//! Scene rendering: correlated backgrounds plus moving sprites.

use crate::{ActionClass, Video};
use rand::Rng;
use snappix_tensor::Tensor;

/// Parameters of one rendered scene.
///
/// Produced by [`crate::Dataset`] from its [`crate::DatasetConfig`]; exposed
/// publicly so tests and examples can render bespoke scenes.
#[derive(Debug, Clone)]
pub struct SceneParams {
    /// Number of frames.
    pub frames: usize,
    /// Frame height in pixels.
    pub height: usize,
    /// Frame width in pixels.
    pub width: usize,
    /// Action performed by the foreground sprites.
    pub action: ActionClass,
    /// Number of foreground sprites.
    pub num_sprites: usize,
    /// Motion amplitude in pixels over the clip.
    pub motion_amplitude: f32,
    /// Background spatial frequency content (number of cosine components).
    pub background_components: usize,
    /// Standard deviation of per-pixel sensor-independent noise.
    pub noise_std: f32,
    /// Global illumination scale applied to the composited scene before
    /// sensor noise: `1.0` is full daylight (the neutral default), lower
    /// values darken toward night, higher values overexpose (clamped at
    /// 0 from below). Noise is *not* scaled — sensor noise does not dim
    /// with the scene, which is exactly why night clips are harder.
    pub illumination: f32,
    /// Transient occlusion severity in `[0, 1]`: `0.0` (the neutral
    /// default) renders no occluder; above it, a dark vertical strip
    /// covering roughly this fraction of the width sweeps in for this
    /// fraction of the clip at a random position/onset.
    pub occlusion: f32,
    /// Temporal burstiness of the motion in `[0, 1]`: `0.0` (the
    /// neutral default) spreads the action trajectory uniformly over
    /// the clip; higher values compress it into a fast burst around the
    /// clip's middle with near-frozen endpoints. All sprites share the
    /// warp, so burst motion is correlated across the scene.
    pub burstiness: f32,
}

impl SceneParams {
    /// The time warp implementing [`burstiness`](Self::burstiness):
    /// maps uniform clip time `tau` in `[0, 1]` to trajectory time.
    /// Identity at zero burstiness.
    fn warp_tau(&self, tau: f32) -> f32 {
        let b = self.burstiness.clamp(0.0, 1.0);
        if b <= 0.0 {
            return tau;
        }
        // Linear speed-up around the midpoint, clamped: at b = 1 the
        // whole trajectory plays out in the middle quarter of the clip.
        ((tau - 0.5) * (1.0 + 3.0 * b) + 0.5).clamp(0.0, 1.0)
    }
}

/// Renders a scene into a [`Video`] using randomness from `rng`.
///
/// The background is a low-frequency random cosine field (spatially
/// correlated, static over the clip); the foreground is `num_sprites` soft
/// disks/squares following the action trajectory with per-sprite phase
/// offsets; optional i.i.d. noise is added per pixel per frame. All values
/// are clamped to `[0, 1]`.
///
/// # Panics
///
/// Panics if any spatial extent is zero.
pub fn render_scene<R: Rng + ?Sized>(params: &SceneParams, rng: &mut R) -> Video {
    assert!(
        params.frames > 0 && params.height > 0 && params.width > 0,
        "scene extents must be positive"
    );
    let (t, h, w) = (params.frames, params.height, params.width);

    // Static, spatially correlated background.
    let mut background = vec![0.5f32; h * w];
    for _ in 0..params.background_components {
        let amp: f32 = rng.random_range(0.02..0.10);
        let fx: f32 = rng.random_range(0.2..2.0) * std::f32::consts::TAU / w as f32;
        let fy: f32 = rng.random_range(0.2..2.0) * std::f32::consts::TAU / h as f32;
        let phase: f32 = rng.random_range(0.0..std::f32::consts::TAU);
        for y in 0..h {
            for x in 0..w {
                background[y * w + x] += amp * (fx * x as f32 + fy * y as f32 + phase).cos();
            }
        }
    }

    // Sprite definitions.
    struct Sprite {
        cx: f32,
        cy: f32,
        radius: f32,
        intensity: f32,
        square: bool,
        phase: f32,
    }
    let sprites: Vec<Sprite> = (0..params.num_sprites.max(1))
        .map(|_| Sprite {
            cx: rng.random_range(0.25..0.75) * w as f32,
            cy: rng.random_range(0.25..0.75) * h as f32,
            radius: rng.random_range(0.08..0.18) * h.min(w) as f32,
            intensity: rng.random_range(0.35..0.5),
            square: rng.random_range(0.0..1.0f32) < 0.4,
            phase: rng.random_range(0.0..0.15),
        })
        .collect();

    // Transient occluder: a dark vertical strip that sweeps in for part
    // of the clip. Its randomness is drawn only when the knob is active,
    // so neutral scenes consume exactly the RNG stream they always did.
    let severity = params.occlusion.clamp(0.0, 1.0);
    let occluder = (severity > 0.0).then(|| {
        let cover = ((severity * w as f32).ceil() as usize).clamp(1, w);
        let x0 = if cover < w {
            rng.random_range(0..w - cover + 1)
        } else {
            0
        };
        let tau0: f32 = rng.random_range(0.0..=(1.0 - severity).max(0.0));
        (x0, cover, tau0, (tau0 + severity).min(1.0))
    });

    let illumination = if params.illumination.is_nan() {
        1.0
    } else {
        params.illumination.max(0.0)
    };

    let mut out = Tensor::zeros(&[t, h, w]);
    let data = out.as_mut_slice();
    for f in 0..t {
        let tau = if t > 1 {
            f as f32 / (t - 1) as f32
        } else {
            0.0
        };
        let frame = &mut data[f * h * w..(f + 1) * h * w];
        frame.copy_from_slice(&background);
        let warped = params.warp_tau(tau);
        for s in &sprites {
            let (dx, dy, size, gain) = params
                .action
                .pose((warped + s.phase).min(1.0), params.motion_amplitude);
            let (cx, cy) = (s.cx + dx, s.cy + dy);
            let r = (s.radius * size).max(0.5);
            // Soft-edged sprite: ~1 inside, smooth roll-off over one pixel.
            let y_lo = (cy - r - 1.5).floor().max(0.0) as usize;
            let y_hi = ((cy + r + 1.5).ceil() as usize).min(h);
            let x_lo = (cx - r - 1.5).floor().max(0.0) as usize;
            let x_hi = ((cx + r + 1.5).ceil() as usize).min(w);
            for y in y_lo..y_hi {
                for x in x_lo..x_hi {
                    let (px, py) = (x as f32 + 0.5 - cx, y as f32 + 0.5 - cy);
                    let dist = if s.square {
                        px.abs().max(py.abs())
                    } else {
                        (px * px + py * py).sqrt()
                    };
                    let coverage = (r - dist + 0.5).clamp(0.0, 1.0);
                    frame[y * w + x] += s.intensity * gain * coverage;
                }
            }
        }
        if illumination != 1.0 {
            for v in frame.iter_mut() {
                *v *= illumination;
            }
        }
        if let Some((x0, cover, tau_on, tau_off)) = occluder {
            if (tau_on..=tau_off).contains(&tau) {
                for y in 0..h {
                    for v in frame[y * w + x0..y * w + x0 + cover].iter_mut() {
                        *v *= 0.08; // nearly opaque: a passer-by, not a shadow
                    }
                }
            }
        }
        if params.noise_std > 0.0 {
            for v in frame.iter_mut() {
                // Box-Muller single sample.
                let u1: f32 = rng.random_range(f32::EPSILON..1.0);
                let u2: f32 = rng.random_range(0.0..1.0);
                let n = (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos();
                *v += params.noise_std * n;
            }
        }
        for v in frame.iter_mut() {
            *v = v.clamp(0.0, 1.0);
        }
    }
    Video::new(out).expect("rank-3 by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn base_params(action: ActionClass) -> SceneParams {
        SceneParams {
            frames: 8,
            height: 24,
            width: 24,
            action,
            num_sprites: 2,
            motion_amplitude: 10.0,
            background_components: 6,
            noise_std: 0.0,
            illumination: 1.0,
            occlusion: 0.0,
            burstiness: 0.0,
        }
    }

    #[test]
    fn output_is_in_unit_range() {
        let mut rng = StdRng::seed_from_u64(0);
        let v = render_scene(&base_params(ActionClass::TranslateRight), &mut rng);
        assert!(v
            .frames()
            .as_slice()
            .iter()
            .all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = render_scene(
            &base_params(ActionClass::Oscillate),
            &mut StdRng::seed_from_u64(7),
        );
        let b = render_scene(
            &base_params(ActionClass::Oscillate),
            &mut StdRng::seed_from_u64(7),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn motion_classes_change_over_time() {
        let mut rng = StdRng::seed_from_u64(1);
        let v = render_scene(&base_params(ActionClass::TranslateRight), &mut rng);
        let first = v.frame(0).unwrap();
        let last = v.frame(7).unwrap();
        let diff = first.sub(&last).unwrap().abs().mean();
        assert!(diff > 1e-3, "translation must move pixels, diff {diff}");
    }

    #[test]
    fn background_is_static_without_sprites_or_noise() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut p = base_params(ActionClass::Flicker);
        p.num_sprites = 1;
        p.motion_amplitude = 0.0;
        let v = render_scene(&p, &mut rng);
        // Far corner away from centered sprites should be identical across
        // frames (background only).
        let a = v.frames().get(&[0, 0, 0]).unwrap();
        let b = v.frames().get(&[7, 0, 0]).unwrap();
        assert!((a - b).abs() < 1e-6);
    }

    #[test]
    fn background_is_spatially_correlated() {
        // Neighboring pixels must be closer on average than distant ones —
        // the redundancy the decorrelation objective exploits.
        let mut rng = StdRng::seed_from_u64(3);
        let mut p = base_params(ActionClass::Flicker);
        p.num_sprites = 0;
        p.background_components = 8;
        let v = render_scene(&p, &mut rng);
        let f = v.frame(0).unwrap();
        let (h, w) = (f.shape()[0], f.shape()[1]);
        let mut near = 0.0f32;
        let mut far = 0.0f32;
        let mut count = 0usize;
        for y in 0..h {
            for x in 0..w - 8 {
                let a = f.get(&[y, x]).unwrap();
                near += (a - f.get(&[y, x + 1]).unwrap()).abs();
                far += (a - f.get(&[y, x + 8]).unwrap()).abs();
                count += 1;
            }
        }
        assert!(
            near / count as f32 * 1.5 < far / count as f32,
            "near diff {near} vs far diff {far}"
        );
    }

    #[test]
    fn noise_perturbs_frames() {
        let mut p = base_params(ActionClass::Flicker);
        p.noise_std = 0.05;
        let a = render_scene(&p, &mut StdRng::seed_from_u64(4));
        p.noise_std = 0.0;
        let b = render_scene(&p, &mut StdRng::seed_from_u64(4));
        assert!(!a.frames().approx_eq(b.frames(), 1e-4));
    }

    fn frame_means(v: &Video) -> Vec<f32> {
        (0..v.frames().shape()[0])
            .map(|f| v.frame(f).unwrap().mean())
            .collect()
    }

    #[test]
    fn night_scenes_are_measurably_darker() {
        // Illumination draws no randomness, so the same seed renders the
        // same scene at two light levels and the means are comparable
        // pixel for pixel.
        let p_day = base_params(ActionClass::TranslateRight);
        let mut p_night = p_day.clone();
        p_night.illumination = 0.25;
        let day = render_scene(&p_day, &mut StdRng::seed_from_u64(11));
        let night = render_scene(&p_night, &mut StdRng::seed_from_u64(11));
        let (day_mean, night_mean) = (day.frames().mean(), night.frames().mean());
        assert!(
            night_mean < day_mean * 0.5,
            "night mean {night_mean} should be well below day mean {day_mean}"
        );
        // And overexposure brightens (clamping keeps it in range).
        let mut p_bright = p_day.clone();
        p_bright.illumination = 2.0;
        let bright = render_scene(&p_bright, &mut StdRng::seed_from_u64(11));
        assert!(bright.frames().mean() > day_mean);
        assert!(bright.frames().as_slice().iter().all(|&x| x <= 1.0));
    }

    #[test]
    fn occlusion_creates_a_transient_brightness_dip() {
        // Static background, motionless sprite, no noise: without an
        // occluder every frame mean is identical, so any spread across
        // frame means is the occluder passing through.
        let mut p = base_params(ActionClass::TranslateRight);
        p.frames = 12;
        p.motion_amplitude = 0.0;
        p.noise_std = 0.0;
        let clean = render_scene(&p, &mut StdRng::seed_from_u64(21));
        let clean_means = frame_means(&clean);
        let spread = |means: &[f32]| {
            let (lo, hi) = means
                .iter()
                .fold((f32::MAX, f32::MIN), |(lo, hi), &m| (lo.min(m), hi.max(m)));
            hi - lo
        };
        assert!(spread(&clean_means) < 1e-6, "static scene, static means");

        p.occlusion = 0.5;
        let occluded = render_scene(&p, &mut StdRng::seed_from_u64(21));
        let occ_means = frame_means(&occluded);
        assert!(
            spread(&occ_means) > 0.05,
            "the occluder must dent some frames: spread {}",
            spread(&occ_means)
        );
        // Transient, not permanent: the brightest occluded frame matches
        // the clean scene (the strip is not always present).
        let max_occ = occ_means.iter().cloned().fold(f32::MIN, f32::max);
        assert!((max_occ - clean_means[0]).abs() < 1e-6);
    }

    #[test]
    fn burstiness_concentrates_motion_mid_clip() {
        // Burstiness draws no randomness either: same seed, same sprites,
        // different temporal profile. Measure per-step change and compare
        // its peak-to-mean ratio.
        let mut p = base_params(ActionClass::TranslateRight);
        p.frames = 16;
        let steady = render_scene(&p, &mut StdRng::seed_from_u64(31));
        p.burstiness = 1.0;
        let bursty = render_scene(&p, &mut StdRng::seed_from_u64(31));
        let step_diffs = |v: &Video| -> Vec<f32> {
            (1..v.frames().shape()[0])
                .map(|f| {
                    v.frame(f)
                        .unwrap()
                        .sub(&v.frame(f - 1).unwrap())
                        .unwrap()
                        .abs()
                        .mean()
                })
                .collect()
        };
        let peak_to_mean = |d: &[f32]| {
            let mean = d.iter().sum::<f32>() / d.len() as f32;
            d.iter().cloned().fold(f32::MIN, f32::max) / mean.max(1e-9)
        };
        let (steady_ratio, bursty_ratio) = (
            peak_to_mean(&step_diffs(&steady)),
            peak_to_mean(&step_diffs(&bursty)),
        );
        assert!(
            bursty_ratio > steady_ratio * 1.5,
            "bursty peak/mean {bursty_ratio} vs steady {steady_ratio}"
        );
        // The endpoints are near-frozen under full burstiness.
        let d = step_diffs(&bursty);
        assert!(d[0] < 1e-6, "start of a bursty clip holds still");
        assert!(d[d.len() - 1] < 1e-6, "end of a bursty clip holds still");
    }

    #[test]
    fn neutral_knobs_change_nothing() {
        // The knob fields at their neutral settings must consume no
        // randomness and alter no arithmetic: pinned so dataset presets
        // stay bit-for-bit reproducible across this change.
        let p = base_params(ActionClass::Oscillate);
        let mut p_explicit = p.clone();
        p_explicit.illumination = 1.0;
        p_explicit.occlusion = 0.0;
        p_explicit.burstiness = 0.0;
        let a = render_scene(&p, &mut StdRng::seed_from_u64(41));
        let b = render_scene(&p_explicit, &mut StdRng::seed_from_u64(41));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_extent_panics() {
        let mut p = base_params(ActionClass::Flicker);
        p.width = 0;
        let _ = render_scene(&p, &mut StdRng::seed_from_u64(0));
    }
}
