//! Scene rendering: correlated backgrounds plus moving sprites.

use crate::{ActionClass, Video};
use rand::Rng;
use snappix_tensor::Tensor;

/// Parameters of one rendered scene.
///
/// Produced by [`crate::Dataset`] from its [`crate::DatasetConfig`]; exposed
/// publicly so tests and examples can render bespoke scenes.
#[derive(Debug, Clone)]
pub struct SceneParams {
    /// Number of frames.
    pub frames: usize,
    /// Frame height in pixels.
    pub height: usize,
    /// Frame width in pixels.
    pub width: usize,
    /// Action performed by the foreground sprites.
    pub action: ActionClass,
    /// Number of foreground sprites.
    pub num_sprites: usize,
    /// Motion amplitude in pixels over the clip.
    pub motion_amplitude: f32,
    /// Background spatial frequency content (number of cosine components).
    pub background_components: usize,
    /// Standard deviation of per-pixel sensor-independent noise.
    pub noise_std: f32,
}

/// Renders a scene into a [`Video`] using randomness from `rng`.
///
/// The background is a low-frequency random cosine field (spatially
/// correlated, static over the clip); the foreground is `num_sprites` soft
/// disks/squares following the action trajectory with per-sprite phase
/// offsets; optional i.i.d. noise is added per pixel per frame. All values
/// are clamped to `[0, 1]`.
///
/// # Panics
///
/// Panics if any spatial extent is zero.
pub fn render_scene<R: Rng + ?Sized>(params: &SceneParams, rng: &mut R) -> Video {
    assert!(
        params.frames > 0 && params.height > 0 && params.width > 0,
        "scene extents must be positive"
    );
    let (t, h, w) = (params.frames, params.height, params.width);

    // Static, spatially correlated background.
    let mut background = vec![0.5f32; h * w];
    for _ in 0..params.background_components {
        let amp: f32 = rng.random_range(0.02..0.10);
        let fx: f32 = rng.random_range(0.2..2.0) * std::f32::consts::TAU / w as f32;
        let fy: f32 = rng.random_range(0.2..2.0) * std::f32::consts::TAU / h as f32;
        let phase: f32 = rng.random_range(0.0..std::f32::consts::TAU);
        for y in 0..h {
            for x in 0..w {
                background[y * w + x] += amp * (fx * x as f32 + fy * y as f32 + phase).cos();
            }
        }
    }

    // Sprite definitions.
    struct Sprite {
        cx: f32,
        cy: f32,
        radius: f32,
        intensity: f32,
        square: bool,
        phase: f32,
    }
    let sprites: Vec<Sprite> = (0..params.num_sprites.max(1))
        .map(|_| Sprite {
            cx: rng.random_range(0.25..0.75) * w as f32,
            cy: rng.random_range(0.25..0.75) * h as f32,
            radius: rng.random_range(0.08..0.18) * h.min(w) as f32,
            intensity: rng.random_range(0.35..0.5),
            square: rng.random_range(0.0..1.0f32) < 0.4,
            phase: rng.random_range(0.0..0.15),
        })
        .collect();

    let mut out = Tensor::zeros(&[t, h, w]);
    let data = out.as_mut_slice();
    for f in 0..t {
        let tau = if t > 1 {
            f as f32 / (t - 1) as f32
        } else {
            0.0
        };
        let frame = &mut data[f * h * w..(f + 1) * h * w];
        frame.copy_from_slice(&background);
        for s in &sprites {
            let (dx, dy, size, gain) = params
                .action
                .pose((tau + s.phase).min(1.0), params.motion_amplitude);
            let (cx, cy) = (s.cx + dx, s.cy + dy);
            let r = (s.radius * size).max(0.5);
            // Soft-edged sprite: ~1 inside, smooth roll-off over one pixel.
            let y_lo = (cy - r - 1.5).floor().max(0.0) as usize;
            let y_hi = ((cy + r + 1.5).ceil() as usize).min(h);
            let x_lo = (cx - r - 1.5).floor().max(0.0) as usize;
            let x_hi = ((cx + r + 1.5).ceil() as usize).min(w);
            for y in y_lo..y_hi {
                for x in x_lo..x_hi {
                    let (px, py) = (x as f32 + 0.5 - cx, y as f32 + 0.5 - cy);
                    let dist = if s.square {
                        px.abs().max(py.abs())
                    } else {
                        (px * px + py * py).sqrt()
                    };
                    let coverage = (r - dist + 0.5).clamp(0.0, 1.0);
                    frame[y * w + x] += s.intensity * gain * coverage;
                }
            }
        }
        if params.noise_std > 0.0 {
            for v in frame.iter_mut() {
                // Box-Muller single sample.
                let u1: f32 = rng.random_range(f32::EPSILON..1.0);
                let u2: f32 = rng.random_range(0.0..1.0);
                let n = (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos();
                *v += params.noise_std * n;
            }
        }
        for v in frame.iter_mut() {
            *v = v.clamp(0.0, 1.0);
        }
    }
    Video::new(out).expect("rank-3 by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn base_params(action: ActionClass) -> SceneParams {
        SceneParams {
            frames: 8,
            height: 24,
            width: 24,
            action,
            num_sprites: 2,
            motion_amplitude: 10.0,
            background_components: 6,
            noise_std: 0.0,
        }
    }

    #[test]
    fn output_is_in_unit_range() {
        let mut rng = StdRng::seed_from_u64(0);
        let v = render_scene(&base_params(ActionClass::TranslateRight), &mut rng);
        assert!(v
            .frames()
            .as_slice()
            .iter()
            .all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = render_scene(
            &base_params(ActionClass::Oscillate),
            &mut StdRng::seed_from_u64(7),
        );
        let b = render_scene(
            &base_params(ActionClass::Oscillate),
            &mut StdRng::seed_from_u64(7),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn motion_classes_change_over_time() {
        let mut rng = StdRng::seed_from_u64(1);
        let v = render_scene(&base_params(ActionClass::TranslateRight), &mut rng);
        let first = v.frame(0).unwrap();
        let last = v.frame(7).unwrap();
        let diff = first.sub(&last).unwrap().abs().mean();
        assert!(diff > 1e-3, "translation must move pixels, diff {diff}");
    }

    #[test]
    fn background_is_static_without_sprites_or_noise() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut p = base_params(ActionClass::Flicker);
        p.num_sprites = 1;
        p.motion_amplitude = 0.0;
        let v = render_scene(&p, &mut rng);
        // Far corner away from centered sprites should be identical across
        // frames (background only).
        let a = v.frames().get(&[0, 0, 0]).unwrap();
        let b = v.frames().get(&[7, 0, 0]).unwrap();
        assert!((a - b).abs() < 1e-6);
    }

    #[test]
    fn background_is_spatially_correlated() {
        // Neighboring pixels must be closer on average than distant ones —
        // the redundancy the decorrelation objective exploits.
        let mut rng = StdRng::seed_from_u64(3);
        let mut p = base_params(ActionClass::Flicker);
        p.num_sprites = 0;
        p.background_components = 8;
        let v = render_scene(&p, &mut rng);
        let f = v.frame(0).unwrap();
        let (h, w) = (f.shape()[0], f.shape()[1]);
        let mut near = 0.0f32;
        let mut far = 0.0f32;
        let mut count = 0usize;
        for y in 0..h {
            for x in 0..w - 8 {
                let a = f.get(&[y, x]).unwrap();
                near += (a - f.get(&[y, x + 1]).unwrap()).abs();
                far += (a - f.get(&[y, x + 8]).unwrap()).abs();
                count += 1;
            }
        }
        assert!(
            near / count as f32 * 1.5 < far / count as f32,
            "near diff {near} vs far diff {far}"
        );
    }

    #[test]
    fn noise_perturbs_frames() {
        let mut p = base_params(ActionClass::Flicker);
        p.noise_std = 0.05;
        let a = render_scene(&p, &mut StdRng::seed_from_u64(4));
        p.noise_std = 0.0;
        let b = render_scene(&p, &mut StdRng::seed_from_u64(4));
        assert!(!a.frames().approx_eq(b.frames(), 1e-4));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_extent_panics() {
        let mut p = base_params(ActionClass::Flicker);
        p.width = 0;
        let _ = render_scene(&p, &mut StdRng::seed_from_u64(0));
    }
}
