//! Dataset configurations, deterministic sampling and batching.

use crate::{render_scene, ActionClass, SceneParams, Video};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use snappix_tensor::Tensor;

/// Configuration of a procedural video dataset.
///
/// Use the [`ssv2_like`], [`k400_like`] and [`ucf101_like`] presets to
/// mirror the roles the paper's datasets play, or build bespoke configs for
/// ablations.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetConfig {
    /// Human-readable dataset name (appears in experiment tables).
    pub name: String,
    /// Frames per clip (the paper uses `T = 16`).
    pub frames: usize,
    /// Frame height.
    pub height: usize,
    /// Frame width.
    pub width: usize,
    /// Number of action classes used (at most 10).
    pub num_classes: usize,
    /// Sprites per scene.
    pub num_sprites: usize,
    /// Motion amplitude in pixels.
    pub motion_amplitude: f32,
    /// Background cosine components (spatial correlation strength).
    pub background_components: usize,
    /// Scene noise standard deviation.
    pub noise_std: f32,
    /// Base RNG seed; sample `i` uses `seed + i`.
    pub seed: u64,
}

/// SSV2-like preset: motion-centric scenes, moderate clutter. This is the
/// main evaluation and pre-training dataset in the paper.
pub fn ssv2_like(frames: usize, height: usize, width: usize) -> DatasetConfig {
    DatasetConfig {
        name: "ssv2-like".to_string(),
        frames,
        height,
        width,
        num_classes: 10,
        num_sprites: 2,
        motion_amplitude: 0.45 * height.min(width) as f32,
        background_components: 6,
        noise_std: 0.01,
        seed: 0x55_52,
    }
}

/// K400-like preset: busier scenes, more texture, slightly noisier — the
/// "larger, harder" dataset role.
pub fn k400_like(frames: usize, height: usize, width: usize) -> DatasetConfig {
    DatasetConfig {
        name: "k400-like".to_string(),
        frames,
        height,
        width,
        num_classes: 10,
        num_sprites: 4,
        motion_amplitude: 0.35 * height.min(width) as f32,
        background_components: 10,
        noise_std: 0.02,
        seed: 0x4b_34,
    }
}

/// UCF101-like preset: cleaner scenes, larger motion — the "easier, small"
/// dataset role (the paper's accuracy is highest on UCF-101).
pub fn ucf101_like(frames: usize, height: usize, width: usize) -> DatasetConfig {
    DatasetConfig {
        name: "ucf101-like".to_string(),
        frames,
        height,
        width,
        num_classes: 8,
        num_sprites: 1,
        motion_amplitude: 0.55 * height.min(width) as f32,
        background_components: 4,
        noise_std: 0.005,
        seed: 0x55_43,
    }
}

/// One labelled clip.
#[derive(Debug, Clone)]
pub struct Sample {
    /// The rendered clip.
    pub video: Video,
    /// Ground-truth class index in `0..num_classes`.
    pub label: usize,
}

/// A deterministic, virtually-infinite video dataset.
///
/// Samples are generated on demand: sample `i` is a pure function of
/// `(config.seed, i)`, so train/test splits are index ranges and no frames
/// are ever stored.
///
/// # Examples
///
/// ```
/// use snappix_video::{ucf101_like, Dataset};
///
/// let data = Dataset::new(ucf101_like(8, 16, 16), 10);
/// let (train, test) = data.split(0.8);
/// assert_eq!(train.len() + test.len(), 10);
/// ```
#[derive(Debug, Clone)]
pub struct Dataset {
    config: DatasetConfig,
    offset: usize,
    len: usize,
}

impl Dataset {
    /// Creates a dataset view of `len` samples starting at index 0.
    pub fn new(config: DatasetConfig, len: usize) -> Self {
        Dataset {
            config,
            offset: 0,
            len,
        }
    }

    /// The configuration this dataset renders from.
    pub fn config(&self) -> &DatasetConfig {
        &self.config
    }

    /// Number of samples in this view.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` for an empty view.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.config.num_classes
    }

    /// Splits into `(train, test)` views of `frac` and `1 - frac` of the
    /// samples.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= frac <= 1.0`.
    pub fn split(&self, frac: f32) -> (Dataset, Dataset) {
        assert!((0.0..=1.0).contains(&frac), "split fraction in [0, 1]");
        let n_train = (self.len as f32 * frac).round() as usize;
        (
            Dataset {
                config: self.config.clone(),
                offset: self.offset,
                len: n_train,
            },
            Dataset {
                config: self.config.clone(),
                offset: self.offset + n_train,
                len: self.len - n_train,
            },
        )
    }

    /// Seeds sample `index`'s RNG and draws its label — the shared
    /// prefix of [`label`](Self::label) and [`sample`](Self::sample)
    /// (rendering continues from the returned RNG state, so the two
    /// always agree).
    fn seed_sample(&self, index: usize) -> (StdRng, usize) {
        assert!(index < self.len, "index {index} out of {}", self.len);
        let global = self.offset + index;
        let mut rng = StdRng::seed_from_u64(
            self.config
                .seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(global as u64),
        );
        // Balanced labels with a touch of shuffling from the RNG.
        let label = if self.config.num_classes == 0 {
            0
        } else {
            (global + rng.random_range(0..2) * self.config.num_classes) % self.config.num_classes
        };
        (rng, label)
    }

    /// Ground-truth label of sample `index`, *without* rendering its
    /// frames — label lookups are cheap even though sampling renders a
    /// full procedural scene.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    pub fn label(&self, index: usize) -> usize {
        self.seed_sample(index).1
    }

    /// Renders sample `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    pub fn sample(&self, index: usize) -> Sample {
        let (mut rng, label) = self.seed_sample(index);
        let params = SceneParams {
            frames: self.config.frames,
            height: self.config.height,
            width: self.config.width,
            action: ActionClass::from_index(label),
            num_sprites: self.config.num_sprites,
            motion_amplitude: self.config.motion_amplitude,
            background_components: self.config.background_components,
            noise_std: self.config.noise_std,
            // Neutral settings: dataset presets model the paper's
            // benchmark conditions; the diversity knobs are for bespoke
            // fleet/stress scenes. Neutral draws no extra randomness, so
            // preset samples are bit-for-bit what they were before the
            // knobs existed.
            illumination: 1.0,
            occlusion: 0.0,
            burstiness: 0.0,
        };
        Sample {
            video: render_scene(&params, &mut rng),
            label,
        }
    }

    /// Renders samples `[start, start + size)` as one batch (wrapping
    /// around the dataset length).
    ///
    /// # Panics
    ///
    /// Panics on an empty dataset.
    pub fn batch(&self, start: usize, size: usize) -> Batch {
        assert!(!self.is_empty(), "cannot batch an empty dataset");
        let mut videos = Vec::with_capacity(size);
        let mut labels = Vec::with_capacity(size);
        for k in 0..size {
            let s = self.sample((start + k) % self.len);
            videos.push(s.video.into_frames());
            labels.push(s.label);
        }
        let refs: Vec<&Tensor> = videos.iter().collect();
        Batch {
            videos: Tensor::stack(&refs, 0).expect("uniform clip shapes"),
            labels,
        }
    }
}

/// A batch of clips: `[batch, t, h, w]` frames plus labels.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Stacked clips `[batch, t, h, w]`.
    pub videos: Tensor,
    /// Ground-truth labels, one per clip.
    pub labels: Vec<usize>,
}

impl Batch {
    /// Number of clips in the batch.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Returns `true` for an empty batch.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_distinct_personalities() {
        let s = ssv2_like(16, 32, 32);
        let k = k400_like(16, 32, 32);
        let u = ucf101_like(16, 32, 32);
        assert!(k.num_sprites > s.num_sprites);
        assert!(u.num_classes < s.num_classes);
        assert_ne!(s.seed, k.seed);
        assert_eq!(s.frames, 16);
    }

    #[test]
    fn sampling_is_deterministic() {
        let data = Dataset::new(ssv2_like(4, 16, 16), 8);
        let a = data.sample(3);
        let b = data.sample(3);
        assert_eq!(a.video, b.video);
        assert_eq!(a.label, b.label);
    }

    #[test]
    fn samples_differ_across_indices() {
        let data = Dataset::new(ssv2_like(4, 16, 16), 8);
        let a = data.sample(0);
        let b = data.sample(1);
        assert!(!a.video.frames().approx_eq(b.video.frames(), 1e-6));
    }

    #[test]
    fn label_agrees_with_sample_without_rendering() {
        let data = Dataset::new(ssv2_like(4, 8, 8), 16);
        for i in 0..data.len() {
            assert_eq!(data.label(i), data.sample(i).label, "sample {i}");
        }
        // Split views agree too (offset is applied).
        let (_, test) = data.split(0.5);
        assert_eq!(test.label(0), data.label(8));
    }

    #[test]
    fn labels_are_roughly_balanced() {
        let data = Dataset::new(ssv2_like(2, 8, 8), 200);
        let mut counts = vec![0usize; data.num_classes()];
        for i in 0..data.len() {
            counts[data.sample(i).label] += 1;
        }
        for (c, &n) in counts.iter().enumerate() {
            assert!(n >= 10, "class {c} badly under-represented: {n}");
        }
    }

    #[test]
    fn split_partitions_without_overlap() {
        let data = Dataset::new(ucf101_like(2, 8, 8), 10);
        let (train, test) = data.split(0.7);
        assert_eq!(train.len(), 7);
        assert_eq!(test.len(), 3);
        // Test sample 0 must equal full-set sample 7.
        let direct = data.sample(7);
        let via_split = test.sample(0);
        assert_eq!(direct.video, via_split.video);
    }

    #[test]
    fn batch_shapes_and_wrapping() {
        let data = Dataset::new(ucf101_like(4, 8, 8), 3);
        let b = data.batch(2, 4); // wraps: samples 2, 0, 1, 2
        assert_eq!(b.videos.shape(), &[4, 4, 8, 8]);
        assert_eq!(b.len(), 4);
        assert!(!b.is_empty());
        assert_eq!(b.labels[0], b.labels[3]);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn sample_bounds_checked() {
        let data = Dataset::new(ucf101_like(2, 8, 8), 2);
        let _ = data.sample(2);
    }
}
