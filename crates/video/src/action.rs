//! Action classes and their motion trajectories.

use std::fmt;

/// The ten ground-truth action classes of the procedural datasets.
///
/// Each class determines the *trajectory* of the foreground sprites over
/// the clip; recognizing the class from a single coded image therefore
/// requires recovering temporal information from the coded exposure, which
/// is exactly the capability SnapPix's evaluation probes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ActionClass {
    /// Uniform motion to the right.
    TranslateRight,
    /// Uniform motion to the left.
    TranslateLeft,
    /// Uniform upward motion.
    TranslateUp,
    /// Uniform downward motion.
    TranslateDown,
    /// Clockwise orbit around the frame center.
    OrbitClockwise,
    /// Counter-clockwise orbit around the frame center.
    OrbitCounterClockwise,
    /// Horizontal sinusoidal oscillation.
    Oscillate,
    /// Sprite grows over the clip.
    Expand,
    /// Sprite shrinks over the clip.
    Contract,
    /// Sprite intensity pulses while nearly static.
    Flicker,
}

/// All classes in a stable order (the class index is the position here).
pub const ALL_CLASSES: [ActionClass; 10] = [
    ActionClass::TranslateRight,
    ActionClass::TranslateLeft,
    ActionClass::TranslateUp,
    ActionClass::TranslateDown,
    ActionClass::OrbitClockwise,
    ActionClass::OrbitCounterClockwise,
    ActionClass::Oscillate,
    ActionClass::Expand,
    ActionClass::Contract,
    ActionClass::Flicker,
];

impl ActionClass {
    /// The class with index `i` (modulo the class count).
    pub fn from_index(i: usize) -> Self {
        ALL_CLASSES[i % ALL_CLASSES.len()]
    }

    /// The stable index of this class.
    pub fn index(self) -> usize {
        ALL_CLASSES
            .iter()
            .position(|&c| c == self)
            .expect("every class is in ALL_CLASSES")
    }

    /// Sprite state at normalized time `tau in [0, 1]`:
    /// `(dx, dy, size_scale, intensity_scale)` relative to the sprite's
    /// base position/size, with motion amplitude `amp` in pixels.
    pub fn pose(self, tau: f32, amp: f32) -> (f32, f32, f32, f32) {
        use std::f32::consts::TAU;
        match self {
            ActionClass::TranslateRight => (amp * (tau - 0.5), 0.0, 1.0, 1.0),
            ActionClass::TranslateLeft => (-amp * (tau - 0.5), 0.0, 1.0, 1.0),
            ActionClass::TranslateUp => (0.0, -amp * (tau - 0.5), 1.0, 1.0),
            ActionClass::TranslateDown => (0.0, amp * (tau - 0.5), 1.0, 1.0),
            ActionClass::OrbitClockwise => {
                let a = TAU * tau;
                (0.5 * amp * a.cos(), 0.5 * amp * a.sin(), 1.0, 1.0)
            }
            ActionClass::OrbitCounterClockwise => {
                let a = TAU * tau;
                (0.5 * amp * a.cos(), -0.5 * amp * a.sin(), 1.0, 1.0)
            }
            ActionClass::Oscillate => ((0.5 * amp) * (TAU * tau).sin(), 0.0, 1.0, 1.0),
            ActionClass::Expand => (0.0, 0.0, 0.6 + 0.9 * tau, 1.0),
            ActionClass::Contract => (0.0, 0.0, 1.5 - 0.9 * tau, 1.0),
            ActionClass::Flicker => {
                let pulse = 0.55 + 0.45 * (2.0 * TAU * tau).sin();
                (0.0, 0.0, 1.0, pulse)
            }
        }
    }
}

impl fmt::Display for ActionClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ActionClass::TranslateRight => "translate-right",
            ActionClass::TranslateLeft => "translate-left",
            ActionClass::TranslateUp => "translate-up",
            ActionClass::TranslateDown => "translate-down",
            ActionClass::OrbitClockwise => "orbit-cw",
            ActionClass::OrbitCounterClockwise => "orbit-ccw",
            ActionClass::Oscillate => "oscillate",
            ActionClass::Expand => "expand",
            ActionClass::Contract => "contract",
            ActionClass::Flicker => "flicker",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trips() {
        for (i, &c) in ALL_CLASSES.iter().enumerate() {
            assert_eq!(c.index(), i);
            assert_eq!(ActionClass::from_index(i), c);
        }
        assert_eq!(ActionClass::from_index(10), ALL_CLASSES[0]);
    }

    #[test]
    fn translations_move_along_one_axis() {
        let (dx0, dy0, ..) = ActionClass::TranslateRight.pose(0.0, 10.0);
        let (dx1, dy1, ..) = ActionClass::TranslateRight.pose(1.0, 10.0);
        assert!(dx1 > dx0);
        assert_eq!(dy0, 0.0);
        assert_eq!(dy1, 0.0);
        let (lx0, ..) = ActionClass::TranslateLeft.pose(0.0, 10.0);
        let (lx1, ..) = ActionClass::TranslateLeft.pose(1.0, 10.0);
        assert!(lx1 < lx0);
    }

    #[test]
    fn orbits_have_opposite_chirality() {
        let (_, cw_y, ..) = ActionClass::OrbitClockwise.pose(0.25, 10.0);
        let (_, ccw_y, ..) = ActionClass::OrbitCounterClockwise.pose(0.25, 10.0);
        assert!(cw_y > 0.0);
        assert!(ccw_y < 0.0);
    }

    #[test]
    fn expand_grows_contract_shrinks() {
        let (.., s0, _) = ActionClass::Expand.pose(0.0, 0.0);
        let (.., s1, _) = ActionClass::Expand.pose(1.0, 0.0);
        assert!(s1 > s0);
        let (.., c0, _) = ActionClass::Contract.pose(0.0, 0.0);
        let (.., c1, _) = ActionClass::Contract.pose(1.0, 0.0);
        assert!(c1 < c0);
        assert!(c1 > 0.0, "size must stay positive");
    }

    #[test]
    fn flicker_modulates_intensity_only() {
        let (dx, dy, s, i0) = ActionClass::Flicker.pose(0.0, 10.0);
        let (.., i_quarter) = ActionClass::Flicker.pose(0.125, 10.0);
        assert_eq!((dx, dy, s), (0.0, 0.0, 1.0));
        assert!(i_quarter > i0);
        // Intensity stays positive over the whole clip.
        for k in 0..=20 {
            let (.., i) = ActionClass::Flicker.pose(k as f32 / 20.0, 10.0);
            assert!(i > 0.0, "intensity at {k}/20 was {i}");
        }
    }

    #[test]
    fn display_names_are_unique() {
        let mut names: Vec<String> = ALL_CLASSES.iter().map(|c| c.to_string()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), ALL_CLASSES.len());
    }
}
