//! Procedural grayscale video datasets for the SnapPix reproduction.
//!
//! The paper evaluates on SSV2, Kinetics-400 and UCF-101, none of which can
//! ship with a reproduction. This crate substitutes procedurally generated
//! grayscale videos whose statistics exercise the same code paths:
//!
//! * **spatially correlated backgrounds** (low-frequency random fields), so
//!   the decorrelation objective of Sec. III has real redundancy to remove;
//! * **temporally coherent motion** with ground-truth *action classes*
//!   (translation direction, orbital rotation, oscillation, scaling,
//!   flicker, bounce), so action-recognition accuracy is well defined;
//! * **deterministic indexing** — sample `i` of a dataset is a pure
//!   function of `(seed, i)`, so experiments are reproducible without
//!   storing a single frame on disk.
//!
//! Three presets mirror the paper's datasets in role: [`ssv2_like`]
//! (motion-centric, the pre-training and main evaluation set),
//! [`k400_like`] (more classes, busier scenes) and [`ucf101_like`]
//! (smaller, easier).
//!
//! # Examples
//!
//! ```
//! use snappix_video::{ssv2_like, Dataset};
//!
//! let config = ssv2_like(16, 32, 32);
//! let data = Dataset::new(config, 100);
//! let sample = data.sample(0);
//! assert_eq!(sample.video.frames().shape(), &[16, 32, 32]);
//! assert!(sample.label < data.num_classes());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod action;
pub mod augment;
mod dataset;
mod metrics;
mod scene;
mod video;

pub use action::ActionClass;
pub use dataset::{k400_like, ssv2_like, ucf101_like, Batch, Dataset, DatasetConfig, Sample};
pub use metrics::psnr;
pub use scene::{render_scene, SceneParams};
pub use video::{Video, Windows};
