use crate::{AutogradError, Result};
use snappix_tensor::Tensor;

/// Handle to a node in a [`Graph`].
///
/// `Var` is a cheap copyable index; it is only meaningful together with the
/// graph that created it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(pub(crate) usize);

/// Backward closure: given the upstream gradient and the parent values,
/// produce one gradient tensor per parent.
pub(crate) type BackwardFn = Box<dyn Fn(&Tensor, &[&Tensor]) -> Vec<Tensor> + Send>;

pub(crate) struct Node {
    pub(crate) value: Tensor,
    pub(crate) parents: Vec<Var>,
    pub(crate) backward: Option<BackwardFn>,
    /// Whether gradients should flow into (or through) this node.
    pub(crate) needs_grad: bool,
}

/// A define-by-run computation tape.
///
/// Operations compute their result eagerly and record how to backpropagate.
/// Nodes are appended in topological order, so [`Graph::backward`] is a
/// single reverse sweep.
///
/// A `Graph` is built per training step: leaf in the parameters and inputs,
/// compose the loss, call [`Graph::backward`], then read gradients with
/// [`Graph::grad`].
///
/// # Examples
///
/// ```
/// use snappix_autograd::Graph;
/// use snappix_tensor::Tensor;
///
/// # fn main() -> Result<(), snappix_autograd::AutogradError> {
/// let mut g = Graph::new();
/// let w = g.leaf(Tensor::eye(2), true);
/// let x = g.leaf(Tensor::from_vec(vec![1.0, 2.0], &[1, 2])?, false);
/// let y = g.matmul(x, w)?;
/// let loss = g.mean(y)?;
/// g.backward(loss)?;
/// assert!(g.grad(w).is_some());
/// assert!(g.grad(x).is_none()); // x did not require gradients
/// # Ok(())
/// # }
/// ```
#[derive(Default)]
pub struct Graph {
    pub(crate) nodes: Vec<Node>,
    grads: Vec<Option<Tensor>>,
}

impl std::fmt::Debug for Graph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Graph")
            .field("nodes", &self.nodes.len())
            .finish()
    }
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Graph {
            nodes: Vec::new(),
            grads: Vec::new(),
        }
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Clears the tape so the allocation can be reused for another step.
    ///
    /// All [`Var`] handles issued before the reset are invalidated; the
    /// node and gradient buffers keep their capacity, which is what lets
    /// callers (e.g. `snappix_nn::SessionPool`) amortize graph allocation
    /// across repeated forward passes instead of building a fresh `Graph`
    /// per call.
    pub fn reset(&mut self) {
        self.nodes.clear();
        self.grads.clear();
    }

    /// Returns `true` if no nodes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Adds a leaf node holding `value`.
    ///
    /// If `requires_grad` is true, a gradient will be accumulated for this
    /// node during [`Graph::backward`].
    pub fn leaf(&mut self, value: Tensor, requires_grad: bool) -> Var {
        self.push(Node {
            value,
            parents: Vec::new(),
            backward: None,
            needs_grad: requires_grad,
        })
    }

    pub(crate) fn push(&mut self, node: Node) -> Var {
        self.nodes.push(node);
        self.grads.push(None);
        Var(self.nodes.len() - 1)
    }

    /// Records an op node. `needs_grad` is inferred from the parents.
    pub(crate) fn push_op(
        &mut self,
        value: Tensor,
        parents: Vec<Var>,
        backward: BackwardFn,
    ) -> Var {
        let needs_grad = parents.iter().any(|p| self.nodes[p.0].needs_grad);
        self.push(Node {
            value,
            parents,
            backward: if needs_grad { Some(backward) } else { None },
            needs_grad,
        })
    }

    /// Records a custom differentiable operation.
    ///
    /// `value` is the already-computed forward result, `parents` the input
    /// variables, and `backward` maps (upstream gradient, parent values) to
    /// one gradient per parent with exactly the parent's shape. This is the
    /// extension point used by downstream crates for operations that are
    /// not worth expressing as compositions of primitives (convolutions,
    /// the coded-exposure integration, pooling).
    ///
    /// # Errors
    ///
    /// Returns [`AutogradError::InvalidVar`] if any parent handle is
    /// foreign.
    pub fn custom_op<F>(&mut self, value: Tensor, parents: Vec<Var>, backward: F) -> Result<Var>
    where
        F: Fn(&Tensor, &[&Tensor]) -> Vec<Tensor> + Send + 'static,
    {
        for &p in &parents {
            self.check(p)?;
        }
        Ok(self.push_op(value, parents, Box::new(backward)))
    }

    pub(crate) fn check(&self, v: Var) -> Result<()> {
        if v.0 >= self.nodes.len() {
            return Err(AutogradError::InvalidVar {
                index: v.0,
                nodes: self.nodes.len(),
            });
        }
        Ok(())
    }

    /// The value computed for `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` does not belong to this graph.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// The accumulated gradient of `v`, if any was produced by the most
    /// recent [`Graph::backward`] call.
    pub fn grad(&self, v: Var) -> Option<&Tensor> {
        self.grads.get(v.0).and_then(|g| g.as_ref())
    }

    /// Clears all accumulated gradients.
    pub fn zero_grads(&mut self) {
        for g in &mut self.grads {
            *g = None;
        }
    }

    /// Runs reverse-mode differentiation from scalar variable `v`.
    ///
    /// Gradients accumulate (`+=`) into every node with `needs_grad`,
    /// reachable from `v`.
    ///
    /// # Errors
    ///
    /// Returns [`AutogradError::NotScalar`] if `v` holds more than one
    /// element, or [`AutogradError::InvalidVar`] for a foreign handle.
    pub fn backward(&mut self, v: Var) -> Result<()> {
        self.check(v)?;
        let out = &self.nodes[v.0].value;
        if out.len() != 1 {
            return Err(AutogradError::NotScalar {
                shape: out.shape().to_vec(),
            });
        }
        self.grads[v.0] = Some(Tensor::full(out.shape(), 1.0));
        for i in (0..=v.0).rev() {
            let Some(upstream) = self.grads[i].clone() else {
                continue;
            };
            let node = &self.nodes[i];
            let Some(backward) = &node.backward else {
                continue;
            };
            let parent_values: Vec<&Tensor> = node
                .parents
                .iter()
                .map(|p| &self.nodes[p.0].value)
                .collect();
            let parent_grads = backward(&upstream, &parent_values);
            debug_assert_eq!(parent_grads.len(), node.parents.len());
            let parents = node.parents.clone();
            for (p, pg) in parents.iter().zip(parent_grads) {
                if !self.nodes[p.0].needs_grad {
                    continue;
                }
                debug_assert_eq!(
                    pg.shape(),
                    self.nodes[p.0].value.shape(),
                    "gradient shape mismatch for node {}",
                    p.0
                );
                match &mut self.grads[p.0] {
                    Some(existing) => existing.add_assign(&pg)?,
                    slot @ None => *slot = Some(pg),
                }
            }
        }
        Ok(())
    }
}

/// Sums `grad` down to `shape`, undoing NumPy-style broadcasting.
///
/// Used by every binary op's backward pass: if a `[1, 3]` bias was broadcast
/// against a `[2, 3]` activation, its gradient must be summed over the
/// broadcast axis.
pub(crate) fn reduce_to_shape(grad: &Tensor, shape: &[usize]) -> Tensor {
    let mut g = grad.clone();
    while g.rank() > shape.len() {
        g = g.sum_axis(0, false).expect("rank > 0");
    }
    for (axis, &d) in shape.iter().enumerate() {
        if d == 1 && g.shape()[axis] != 1 {
            g = g.sum_axis(axis, true).expect("axis in range");
        }
    }
    g.reshape(shape)
        .expect("same element count after reduction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_and_value_round_trip() {
        let mut g = Graph::new();
        let t = Tensor::arange(3);
        let v = g.leaf(t.clone(), true);
        assert_eq!(g.value(v), &t);
        assert_eq!(g.len(), 1);
        assert!(!g.is_empty());
    }

    #[test]
    fn backward_rejects_non_scalar() {
        let mut g = Graph::new();
        let v = g.leaf(Tensor::zeros(&[2]), true);
        assert!(matches!(
            g.backward(v),
            Err(AutogradError::NotScalar { .. })
        ));
    }

    #[test]
    fn backward_on_scalar_leaf_sets_unit_grad() {
        let mut g = Graph::new();
        let v = g.leaf(Tensor::scalar(5.0), true);
        g.backward(v).unwrap();
        assert_eq!(g.grad(v).unwrap().as_slice(), &[1.0]);
    }

    #[test]
    fn no_grad_for_non_requiring_leaves() {
        let mut g = Graph::new();
        let a = g.leaf(Tensor::scalar(1.0), false);
        let b = g.leaf(Tensor::scalar(2.0), true);
        let c = g.add(a, b).unwrap();
        g.backward(c).unwrap();
        assert!(g.grad(a).is_none());
        assert_eq!(g.grad(b).unwrap().as_slice(), &[1.0]);
    }

    #[test]
    fn grads_accumulate_across_uses() {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::scalar(3.0), true);
        let y = g.add(x, x).unwrap(); // y = 2x
        g.backward(y).unwrap();
        assert_eq!(g.grad(x).unwrap().as_slice(), &[2.0]);
    }

    #[test]
    fn zero_grads_clears() {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::scalar(3.0), true);
        let y = g.add(x, x).unwrap();
        g.backward(y).unwrap();
        g.zero_grads();
        assert!(g.grad(x).is_none());
    }

    #[test]
    fn reduce_to_shape_sums_broadcast_axes() {
        let grad = Tensor::ones(&[2, 3]);
        let r = reduce_to_shape(&grad, &[1, 3]);
        assert_eq!(r.shape(), &[1, 3]);
        assert_eq!(r.as_slice(), &[2.0, 2.0, 2.0]);
        let r2 = reduce_to_shape(&grad, &[3]);
        assert_eq!(r2.shape(), &[3]);
        let r3 = reduce_to_shape(&grad, &[]);
        assert_eq!(r3.as_slice(), &[6.0]);
    }

    #[test]
    fn graph_debug_prints_node_count() {
        let mut g = Graph::new();
        g.leaf(Tensor::scalar(0.0), false);
        assert!(format!("{g:?}").contains("nodes"));
    }
}
