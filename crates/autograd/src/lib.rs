//! Tape-based reverse-mode automatic differentiation over
//! [`snappix_tensor::Tensor`].
//!
//! The SnapPix reproduction needs gradients in two places: learning the
//! coded-exposure mask by minimizing the decorrelation loss (paper Sec. III,
//! via a straight-through estimator), and training the downstream vision
//! models (paper Sec. IV). Both are served by this crate's [`Graph`]: a
//! define-by-run tape where every operation eagerly computes its value and
//! records a backward closure.
//!
//! # Examples
//!
//! ```
//! use snappix_autograd::Graph;
//! use snappix_tensor::Tensor;
//!
//! # fn main() -> Result<(), snappix_autograd::AutogradError> {
//! let mut g = Graph::new();
//! let x = g.leaf(Tensor::from_vec(vec![2.0, 3.0], &[2])?, true);
//! let y = g.mul(x, x)?;          // y = x^2
//! let loss = g.sum(y)?;          // loss = sum(x^2)
//! g.backward(loss)?;
//! // d(sum x^2)/dx = 2x
//! assert_eq!(g.grad(x).unwrap().as_slice(), &[4.0, 6.0]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod gradcheck;
mod graph;
mod ops_linalg;
mod ops_pointwise;
mod ops_structural;

pub use error::AutogradError;
pub use gradcheck::check_gradients;
pub use graph::{Graph, Var};

/// Convenient result alias used across this crate.
pub type Result<T> = std::result::Result<T, AutogradError>;
