//! Linear algebra, reshaping and reduction operations with gradients.

use crate::{AutogradError, Graph, Result, Var};
use snappix_tensor::Tensor;

impl Graph {
    /// Matrix multiplication (rank-2, batched rank-3, or rank-3 by shared
    /// rank-2 right-hand side), mirroring
    /// [`snappix_tensor::Tensor::matmul`].
    ///
    /// # Errors
    ///
    /// Fails on inner-dimension mismatches or foreign handles.
    pub fn matmul(&mut self, a: Var, b: Var) -> Result<Var> {
        self.check(a)?;
        self.check(b)?;
        let value = self.value(a).matmul(self.value(b))?;
        let (ra, rb) = (self.value(a).rank(), self.value(b).rank());
        Ok(self.push_op(
            value,
            vec![a, b],
            Box::new(move |g, parents| {
                let (av, bv) = (parents[0], parents[1]);
                match (ra, rb) {
                    (2, 2) | (3, 3) => {
                        let da = g
                            .matmul(&bv.transpose().expect("rank >= 2"))
                            .expect("shapes match forward");
                        let db = av
                            .transpose()
                            .expect("rank >= 2")
                            .matmul(g)
                            .expect("shapes match forward");
                        vec![da, db]
                    }
                    (3, 2) => {
                        // a: [batch, m, k], b: [k, n], g: [batch, m, n]
                        let da = g
                            .matmul(&bv.transpose().expect("rank 2"))
                            .expect("shapes match forward");
                        let (batch, m, k) = (av.shape()[0], av.shape()[1], av.shape()[2]);
                        let n = bv.shape()[1];
                        let a_flat = av.reshape(&[batch * m, k]).expect("same length");
                        let g_flat = g.reshape(&[batch * m, n]).expect("same length");
                        let db = a_flat
                            .transpose()
                            .expect("rank 2")
                            .matmul(&g_flat)
                            .expect("shapes match forward");
                        vec![da, db]
                    }
                    _ => unreachable!("forward would have rejected these ranks"),
                }
            }),
        ))
    }

    /// Transposes the last two axes.
    ///
    /// # Errors
    ///
    /// Fails for rank < 2 or a foreign handle.
    pub fn transpose(&mut self, a: Var) -> Result<Var> {
        self.check(a)?;
        let value = self.value(a).transpose()?;
        Ok(self.push_op(
            value,
            vec![a],
            Box::new(|g, _| vec![g.transpose().expect("rank >= 2")]),
        ))
    }

    /// Permutes axes; backward applies the inverse permutation.
    ///
    /// # Errors
    ///
    /// Fails unless `perm` is a permutation of `0..rank`.
    pub fn permute(&mut self, a: Var, perm: &[usize]) -> Result<Var> {
        self.check(a)?;
        let value = self.value(a).permute(perm)?;
        let mut inverse = vec![0usize; perm.len()];
        for (i, &p) in perm.iter().enumerate() {
            inverse[p] = i;
        }
        Ok(self.push_op(
            value,
            vec![a],
            Box::new(move |g, _| vec![g.permute(&inverse).expect("inverse permutation")]),
        ))
    }

    /// Reshapes without changing data.
    ///
    /// # Errors
    ///
    /// Fails when the element counts differ.
    pub fn reshape(&mut self, a: Var, shape: &[usize]) -> Result<Var> {
        self.check(a)?;
        let value = self.value(a).reshape(shape)?;
        Ok(self.push_op(
            value,
            vec![a],
            Box::new(|g, parents| vec![g.reshape(parents[0].shape()).expect("same length")]),
        ))
    }

    /// Sum of all elements, producing a scalar.
    ///
    /// # Errors
    ///
    /// Fails for a foreign handle.
    pub fn sum(&mut self, a: Var) -> Result<Var> {
        self.check(a)?;
        let value = Tensor::scalar(self.value(a).sum());
        Ok(self.push_op(
            value,
            vec![a],
            Box::new(|g, parents| {
                let s = g.as_slice()[0];
                vec![Tensor::full(parents[0].shape(), s)]
            }),
        ))
    }

    /// Mean of all elements, producing a scalar.
    ///
    /// # Errors
    ///
    /// Fails for a foreign handle.
    pub fn mean(&mut self, a: Var) -> Result<Var> {
        self.check(a)?;
        let n = self.value(a).len().max(1) as f32;
        let value = Tensor::scalar(self.value(a).mean());
        Ok(self.push_op(
            value,
            vec![a],
            Box::new(move |g, parents| {
                let s = g.as_slice()[0] / n;
                vec![Tensor::full(parents[0].shape(), s)]
            }),
        ))
    }

    /// Sums along `axis`, keeping it with extent 1 when `keepdims`.
    ///
    /// # Errors
    ///
    /// Fails when `axis >= rank`.
    pub fn sum_axis(&mut self, a: Var, axis: usize, keepdims: bool) -> Result<Var> {
        self.check(a)?;
        let value = self.value(a).sum_axis(axis, keepdims)?;
        Ok(self.push_op(
            value,
            vec![a],
            Box::new(move |g, parents| {
                let target = parents[0].shape();
                let g_keep = if keepdims {
                    g.clone()
                } else {
                    g.unsqueeze(axis).expect("axis valid in forward")
                };
                vec![g_keep.broadcast_to(target).expect("unit axis expands")]
            }),
        ))
    }

    /// Means along `axis`, keeping it with extent 1 when `keepdims`.
    ///
    /// # Errors
    ///
    /// Fails when `axis >= rank`.
    pub fn mean_axis(&mut self, a: Var, axis: usize, keepdims: bool) -> Result<Var> {
        self.check(a)?;
        let n = *self
            .value(a)
            .shape()
            .get(axis)
            .ok_or(AutogradError::Tensor(
                snappix_tensor::TensorError::AxisOutOfRange {
                    axis,
                    rank: self.value(a).rank(),
                },
            ))? as f32;
        let s = self.sum_axis(a, axis, keepdims)?;
        self.scale(s, 1.0 / n.max(1.0))
    }

    /// Softmax along the last axis.
    ///
    /// # Errors
    ///
    /// Fails for rank-0 tensors.
    pub fn softmax(&mut self, a: Var) -> Result<Var> {
        self.check(a)?;
        let value = self.value(a).softmax_last()?;
        let cached = value.clone();
        Ok(self.push_op(
            value,
            vec![a],
            Box::new(move |g, _| {
                // dX = S * (dY - sum(dY * S, last))
                let gs = g.mul(&cached).expect("same shape");
                let last = cached.rank() - 1;
                let row_sum = gs.sum_axis(last, true).expect("axis valid");
                let centered = g.sub(&row_sum).expect("broadcast row");
                vec![centered.mul(&cached).expect("same shape")]
            }),
        ))
    }

    /// Layer normalization over the last axis with learnable `gamma`/`beta`
    /// composed from primitive ops (so gradients need no bespoke code).
    ///
    /// `gamma` and `beta` must be broadcastable against the input (typically
    /// shape `[d]` for input `[..., d]`).
    ///
    /// # Errors
    ///
    /// Fails on shape mismatches.
    pub fn layer_norm(&mut self, x: Var, gamma: Var, beta: Var, eps: f32) -> Result<Var> {
        self.check(x)?;
        let last = self
            .value(x)
            .rank()
            .checked_sub(1)
            .ok_or(AutogradError::NotScalar { shape: vec![] })?;
        let mu = self.mean_axis(x, last, true)?;
        let centered = self.sub(x, mu)?;
        let sq = self.mul(centered, centered)?;
        let var = self.mean_axis(sq, last, true)?;
        let var_eps = self.add_scalar(var, eps)?;
        let inv_std = self.powf(var_eps, -0.5)?;
        let normed = self.mul(centered, inv_std)?;
        let scaled = self.mul(normed, gamma)?;
        self.add(scaled, beta)
    }

    /// Fused softmax-cross-entropy between `logits` (`[batch, classes]`) and
    /// integer `targets`, returning the mean loss as a scalar.
    ///
    /// # Errors
    ///
    /// Fails for non-rank-2 logits, a target list whose length differs from
    /// the batch, or an out-of-range class index.
    pub fn cross_entropy_logits(&mut self, logits: Var, targets: &[usize]) -> Result<Var> {
        self.check(logits)?;
        let lv = self.value(logits);
        if lv.rank() != 2 {
            return Err(AutogradError::Tensor(
                snappix_tensor::TensorError::RankMismatch {
                    expected: 2,
                    got: lv.rank(),
                },
            ));
        }
        let (batch, classes) = (lv.shape()[0], lv.shape()[1]);
        if targets.len() != batch {
            return Err(AutogradError::InvalidArgument {
                context: format!("{} targets for batch of {batch}", targets.len()),
            });
        }
        for &t in targets {
            if t >= classes {
                return Err(AutogradError::InvalidArgument {
                    context: format!("target class {t} out of {classes}"),
                });
            }
        }
        let probs = lv.softmax_last()?;
        let mut loss = 0.0f32;
        for (b, &t) in targets.iter().enumerate() {
            loss -= probs.get(&[b, t]).expect("validated index").max(1e-12).ln();
        }
        loss /= batch as f32;
        let probs_cached = probs;
        let targets_owned = targets.to_vec();
        Ok(self.push_op(
            Tensor::scalar(loss),
            vec![logits],
            Box::new(move |g, _| {
                let s = g.as_slice()[0] / batch as f32;
                let mut d = probs_cached.clone();
                {
                    let dd = d.as_mut_slice();
                    for (b, &t) in targets_owned.iter().enumerate() {
                        dd[b * classes + t] -= 1.0;
                    }
                }
                vec![d.scale(s)]
            }),
        ))
    }

    /// Mean-squared-error between `pred` and a constant `target`, returning
    /// the scalar mean over all elements.
    ///
    /// # Errors
    ///
    /// Fails when the shapes differ.
    pub fn mse_loss(&mut self, pred: Var, target: &Tensor) -> Result<Var> {
        self.check(pred)?;
        if self.value(pred).shape() != target.shape() {
            return Err(AutogradError::Tensor(
                snappix_tensor::TensorError::IncompatibleShapes {
                    context: format!(
                        "mse pred {:?} vs target {:?}",
                        self.value(pred).shape(),
                        target.shape()
                    ),
                },
            ));
        }
        let t = self.leaf(target.clone(), false);
        let diff = self.sub(pred, t)?;
        let sq = self.mul(diff, diff)?;
        self.mean(sq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_gradients;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn matmul_2d_numeric() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Tensor::rand_uniform(&mut rng, &[3, 4], -1.0, 1.0);
        let b = Tensor::rand_uniform(&mut rng, &[4, 2], -1.0, 1.0);
        check_gradients(&[a, b], |g, vars| {
            let c = g.matmul(vars[0], vars[1])?;
            g.sum(c)
        })
        .unwrap();
    }

    #[test]
    fn matmul_batched_numeric() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Tensor::rand_uniform(&mut rng, &[2, 3, 4], -1.0, 1.0);
        let b = Tensor::rand_uniform(&mut rng, &[2, 4, 2], -1.0, 1.0);
        check_gradients(&[a, b], |g, vars| {
            let c = g.matmul(vars[0], vars[1])?;
            g.sum(c)
        })
        .unwrap();
    }

    #[test]
    fn matmul_shared_rhs_numeric() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = Tensor::rand_uniform(&mut rng, &[2, 3, 4], -1.0, 1.0);
        let b = Tensor::rand_uniform(&mut rng, &[4, 5], -1.0, 1.0);
        check_gradients(&[a, b], |g, vars| {
            let c = g.matmul(vars[0], vars[1])?;
            g.sum(c)
        })
        .unwrap();
    }

    #[test]
    fn transpose_and_permute_numeric() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = Tensor::rand_uniform(&mut rng, &[2, 3, 4], -1.0, 1.0);
        check_gradients(std::slice::from_ref(&a), |g, vars| {
            let t = g.transpose(vars[0])?;
            let s = g.mul(t, t)?;
            g.sum(s)
        })
        .unwrap();
        check_gradients(&[a], |g, vars| {
            let p = g.permute(vars[0], &[2, 0, 1])?;
            let s = g.mul(p, p)?;
            g.sum(s)
        })
        .unwrap();
    }

    #[test]
    fn reshape_numeric() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = Tensor::rand_uniform(&mut rng, &[2, 6], -1.0, 1.0);
        check_gradients(&[a], |g, vars| {
            let r = g.reshape(vars[0], &[3, 4])?;
            let s = g.mul(r, r)?;
            g.sum(s)
        })
        .unwrap();
    }

    #[test]
    fn reductions_numeric() {
        let mut rng = StdRng::seed_from_u64(6);
        let a = Tensor::rand_uniform(&mut rng, &[3, 4], -1.0, 1.0);
        check_gradients(std::slice::from_ref(&a), |g, vars| {
            let s = g.sum_axis(vars[0], 0, false)?;
            let q = g.mul(s, s)?;
            g.sum(q)
        })
        .unwrap();
        check_gradients(std::slice::from_ref(&a), |g, vars| {
            let s = g.mean_axis(vars[0], 1, true)?;
            let q = g.mul(s, s)?;
            g.sum(q)
        })
        .unwrap();
        check_gradients(&[a], |g, vars| g.mean(vars[0])).unwrap();
    }

    #[test]
    fn softmax_numeric() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = Tensor::rand_uniform(&mut rng, &[2, 5], -2.0, 2.0);
        check_gradients(&[a], |g, vars| {
            let s = g.softmax(vars[0])?;
            // A non-symmetric downstream function so errors can't cancel.
            let w = g.leaf(Tensor::arange(5).reshape(&[1, 5]).unwrap(), false);
            let m = g.mul(s, w)?;
            g.sum(m)
        })
        .unwrap();
    }

    #[test]
    fn layer_norm_normalizes_and_differentiates() {
        let mut rng = StdRng::seed_from_u64(8);
        let x = Tensor::rand_uniform(&mut rng, &[2, 6], -3.0, 3.0);
        let gamma = Tensor::ones(&[6]);
        let beta = Tensor::zeros(&[6]);

        // Forward: rows have ~zero mean and ~unit variance.
        let mut g = Graph::new();
        let xv = g.leaf(x.clone(), true);
        let gv = g.leaf(gamma.clone(), true);
        let bv = g.leaf(beta.clone(), true);
        let y = g.layer_norm(xv, gv, bv, 1e-5).unwrap();
        let row0 = g.value(y).slice_axis(0, 0, 1).unwrap();
        assert!(row0.mean().abs() < 1e-5);
        assert!((row0.variance() - 1.0).abs() < 1e-3);

        check_gradients(&[x, gamma, beta], |g, vars| {
            let y = g.layer_norm(vars[0], vars[1], vars[2], 1e-5)?;
            let w = g.leaf(Tensor::arange(6).reshape(&[1, 6]).unwrap(), false);
            let m = g.mul(y, w)?;
            g.sum(m)
        })
        .unwrap();
    }

    #[test]
    fn cross_entropy_matches_manual() {
        let mut g = Graph::new();
        let logits = g.leaf(
            Tensor::from_vec(vec![2.0, 0.0, 0.0, 0.0, 3.0, 0.0], &[2, 3]).unwrap(),
            true,
        );
        let loss = g.cross_entropy_logits(logits, &[0, 1]).unwrap();
        // Manual: -log softmax[0,0] and -log softmax[1,1], averaged.
        let p00 = (2.0f32).exp() / ((2.0f32).exp() + 2.0);
        let p11 = (3.0f32).exp() / ((3.0f32).exp() + 2.0);
        let expected = -(p00.ln() + p11.ln()) / 2.0;
        assert!((g.value(loss).as_slice()[0] - expected).abs() < 1e-5);
        g.backward(loss).unwrap();
        // Gradient rows sum to zero (softmax minus one-hot).
        let grad = g.grad(logits).unwrap();
        for b in 0..2 {
            let row_sum: f32 = (0..3).map(|c| grad.get(&[b, c]).unwrap()).sum();
            assert!(row_sum.abs() < 1e-6);
        }
    }

    #[test]
    fn cross_entropy_numeric() {
        let mut rng = StdRng::seed_from_u64(9);
        let logits = Tensor::rand_uniform(&mut rng, &[3, 4], -2.0, 2.0);
        check_gradients(&[logits], |g, vars| {
            g.cross_entropy_logits(vars[0], &[1, 3, 0])
        })
        .unwrap();
    }

    #[test]
    fn cross_entropy_validation() {
        let mut g = Graph::new();
        let l = g.leaf(Tensor::zeros(&[2, 3]), true);
        assert!(g.cross_entropy_logits(l, &[0]).is_err());
        assert!(g.cross_entropy_logits(l, &[0, 5]).is_err());
        let l1 = g.leaf(Tensor::zeros(&[6]), true);
        assert!(g.cross_entropy_logits(l1, &[0]).is_err());
    }

    #[test]
    fn mse_loss_value_and_gradient() {
        let mut g = Graph::new();
        let p = g.leaf(Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap(), true);
        let target = Tensor::from_vec(vec![0.0, 4.0], &[2]).unwrap();
        let loss = g.mse_loss(p, &target).unwrap();
        // ((1-0)^2 + (2-4)^2) / 2 = 2.5
        assert!((g.value(loss).as_slice()[0] - 2.5).abs() < 1e-6);
        g.backward(loss).unwrap();
        assert_eq!(g.grad(p).unwrap().as_slice(), &[1.0, -2.0]);
        assert!(g.mse_loss(p, &Tensor::zeros(&[3])).is_err());
    }
}
