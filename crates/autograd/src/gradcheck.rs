//! Finite-difference gradient verification.

use crate::{AutogradError, Graph, Result, Var};
use snappix_tensor::Tensor;

/// Verifies analytic gradients against central finite differences.
///
/// `build` receives a fresh [`Graph`] and one leaf [`Var`] per input tensor
/// (all requiring gradients) and must return a scalar loss variable. The
/// check perturbs every input element by ±1e-3 and compares the numeric
/// slope against the analytic gradient with a mixed absolute/relative
/// tolerance.
///
/// # Errors
///
/// Returns [`AutogradError::InvalidArgument`] describing the first element
/// whose analytic and numeric gradients disagree, or propagates any graph
/// construction error from `build`.
///
/// # Examples
///
/// ```
/// use snappix_autograd::check_gradients;
/// use snappix_tensor::Tensor;
///
/// # fn main() -> Result<(), snappix_autograd::AutogradError> {
/// let x = Tensor::from_vec(vec![1.0, 2.0], &[2])?;
/// check_gradients(&[x], |g, vars| {
///     let y = g.mul(vars[0], vars[0])?;
///     g.sum(y)
/// })?;
/// # Ok(())
/// # }
/// ```
pub fn check_gradients<F>(inputs: &[Tensor], build: F) -> Result<()>
where
    F: Fn(&mut Graph, &[Var]) -> Result<Var>,
{
    const EPS: f32 = 1e-3;
    const ATOL: f32 = 2e-2;
    const RTOL: f32 = 5e-2;

    let eval = |tensors: &[Tensor]| -> Result<(f32, Vec<Option<Tensor>>)> {
        let mut g = Graph::new();
        let vars: Vec<Var> = tensors.iter().map(|t| g.leaf(t.clone(), true)).collect();
        let loss = build(&mut g, &vars)?;
        let value = g.value(loss).item()?;
        g.backward(loss)?;
        let grads = vars.iter().map(|&v| g.grad(v).cloned()).collect();
        Ok((value, grads))
    };

    let (_, analytic) = eval(inputs)?;

    for (ti, input) in inputs.iter().enumerate() {
        let grad = analytic[ti]
            .as_ref()
            .ok_or_else(|| AutogradError::InvalidArgument {
                context: format!("no gradient produced for input {ti}"),
            })?;
        for ei in 0..input.len() {
            let mut plus = inputs.to_vec();
            plus[ti].as_mut_slice()[ei] += EPS;
            let (fp, _) = eval_loss_only(&plus, &build)?;
            let mut minus = inputs.to_vec();
            minus[ti].as_mut_slice()[ei] -= EPS;
            let (fm, _) = eval_loss_only(&minus, &build)?;
            let numeric = (fp - fm) / (2.0 * EPS);
            let a = grad.as_slice()[ei];
            let tol = ATOL + RTOL * numeric.abs().max(a.abs());
            if (numeric - a).abs() > tol {
                return Err(AutogradError::InvalidArgument {
                    context: format!(
                        "gradient mismatch at input {ti} element {ei}: \
                         analytic {a} vs numeric {numeric}"
                    ),
                });
            }
        }
    }
    Ok(())
}

fn eval_loss_only<F>(tensors: &[Tensor], build: &F) -> Result<(f32, ())>
where
    F: Fn(&mut Graph, &[Var]) -> Result<Var>,
{
    let mut g = Graph::new();
    let vars: Vec<Var> = tensors.iter().map(|t| g.leaf(t.clone(), false)).collect();
    let loss = build(&mut g, &vars)?;
    Ok((g.value(loss).item()?, ()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passes_for_correct_gradient() {
        let x = Tensor::from_vec(vec![0.5, -1.5, 2.0], &[3]).unwrap();
        check_gradients(&[x], |g, vars| {
            let y = g.mul(vars[0], vars[0])?;
            g.sum(y)
        })
        .unwrap();
    }

    #[test]
    fn fails_for_wrong_gradient() {
        // binarize without STE semantics would be flat almost everywhere;
        // STE deliberately reports a non-zero "gradient", so gradcheck must
        // flag it as inconsistent with the numeric slope.
        let x = Tensor::from_vec(vec![0.5, -1.5], &[2]).unwrap();
        let result = check_gradients(&[x], |g, vars| {
            let y = g.binarize_ste(vars[0], 0.0)?;
            g.sum(y)
        });
        assert!(result.is_err());
    }
}
