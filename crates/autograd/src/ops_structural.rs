//! Structural operations: concatenation, slicing, gathering, patch
//! extraction and tile repetition.
//!
//! These give the coded-exposure codec and the ViT models their
//! data-movement primitives while keeping gradients exact (every move is a
//! permutation or a sum, so the backward passes are scatter/adds).

use crate::{AutogradError, Graph, Result, Var};
use snappix_tensor::Tensor;

impl Graph {
    /// Concatenates variables along `axis`.
    ///
    /// # Errors
    ///
    /// Fails for an empty list, bad axis, or off-axis shape mismatches.
    pub fn concat(&mut self, vars: &[Var], axis: usize) -> Result<Var> {
        for &v in vars {
            self.check(v)?;
        }
        let tensors: Vec<&Tensor> = vars.iter().map(|&v| self.value(v)).collect();
        let value = Tensor::concat(&tensors, axis)?;
        let extents: Vec<usize> = tensors.iter().map(|t| t.shape()[axis]).collect();
        Ok(self.push_op(
            value,
            vars.to_vec(),
            Box::new(move |g, _| {
                let mut grads = Vec::with_capacity(extents.len());
                let mut start = 0usize;
                for &e in &extents {
                    grads.push(
                        g.slice_axis(axis, start, start + e)
                            .expect("extents partition the axis"),
                    );
                    start += e;
                }
                grads
            }),
        ))
    }

    /// Slices `[start, end)` along `axis`.
    ///
    /// # Errors
    ///
    /// Fails on a bad axis or range.
    pub fn slice_axis(&mut self, a: Var, axis: usize, start: usize, end: usize) -> Result<Var> {
        self.check(a)?;
        let value = self.value(a).slice_axis(axis, start, end)?;
        Ok(self.push_op(
            value,
            vec![a],
            Box::new(move |g, parents| {
                // Scatter the slice gradient back into a zero tensor.
                let src_shape = parents[0].shape();
                let mut out = Tensor::zeros(src_shape);
                let outer: usize = src_shape[..axis].iter().product();
                let mid = src_shape[axis];
                let inner: usize = src_shape[axis + 1..].iter().product();
                let gs = g.as_slice();
                let os = out.as_mut_slice();
                let width = end - start;
                for o in 0..outer {
                    for m in 0..width {
                        let src_base = (o * width + m) * inner;
                        let dst_base = (o * mid + start + m) * inner;
                        os[dst_base..dst_base + inner]
                            .copy_from_slice(&gs[src_base..src_base + inner]);
                    }
                }
                vec![out]
            }),
        ))
    }

    /// Gathers rows of a rank-2 variable; backward scatter-adds (so
    /// duplicate indices accumulate).
    ///
    /// # Errors
    ///
    /// Fails for non-rank-2 input or out-of-range indices.
    pub fn gather_rows(&mut self, a: Var, indices: &[usize]) -> Result<Var> {
        self.check(a)?;
        let value = self.value(a).gather_rows(indices)?;
        let idx = indices.to_vec();
        Ok(self.push_op(
            value,
            vec![a],
            Box::new(move |g, parents| {
                let (rows, cols) = (parents[0].shape()[0], parents[0].shape()[1]);
                let mut out = Tensor::zeros(&[rows, cols]);
                let gs = g.as_slice();
                let os = out.as_mut_slice();
                for (r, &i) in idx.iter().enumerate() {
                    for c in 0..cols {
                        os[i * cols + c] += gs[r * cols + c];
                    }
                }
                vec![out]
            }),
        ))
    }

    /// Extracts non-overlapping `ph x pw` patches.
    ///
    /// Accepts `[h, w]` (returns `[p, ph*pw]`) or batched `[batch, h, w]`
    /// (returns `[batch, p, ph*pw]`). This is the differentiable "patchify"
    /// used by the CE-optimized ViT (paper Sec. IV).
    ///
    /// # Errors
    ///
    /// Fails when the patch size does not tile the frame.
    pub fn extract_patches(&mut self, a: Var, ph: usize, pw: usize) -> Result<Var> {
        self.check(a)?;
        let av = self.value(a);
        match av.rank() {
            2 => {
                let value = av.extract_patches(ph, pw)?;
                Ok(self.push_op(
                    value,
                    vec![a],
                    Box::new(move |g, parents| {
                        let (h, w) = (parents[0].shape()[0], parents[0].shape()[1]);
                        vec![g
                            .assemble_patches(ph, pw, h, w)
                            .expect("inverse of forward")]
                    }),
                ))
            }
            3 => {
                let (batch, h, w) = (av.shape()[0], av.shape()[1], av.shape()[2]);
                let mut frames = Vec::with_capacity(batch);
                for b in 0..batch {
                    frames.push(av.index_axis(0, b)?.extract_patches(ph, pw)?);
                }
                let refs: Vec<&Tensor> = frames.iter().collect();
                let value = Tensor::stack(&refs, 0)?;
                Ok(self.push_op(
                    value,
                    vec![a],
                    Box::new(move |g, _| {
                        let mut outs = Vec::with_capacity(batch);
                        for b in 0..batch {
                            outs.push(
                                g.index_axis(0, b)
                                    .expect("batch axis")
                                    .assemble_patches(ph, pw, h, w)
                                    .expect("inverse of forward"),
                            );
                        }
                        let refs: Vec<&Tensor> = outs.iter().collect();
                        vec![Tensor::stack(&refs, 0).expect("uniform shapes")]
                    }),
                ))
            }
            r => Err(AutogradError::Tensor(
                snappix_tensor::TensorError::RankMismatch {
                    expected: 2,
                    got: r,
                },
            )),
        }
    }

    /// Reassembles patches into frames: inverse of
    /// [`Graph::extract_patches`], accepting `[p, ph*pw]` or
    /// `[batch, p, ph*pw]`.
    ///
    /// # Errors
    ///
    /// Fails when the patch grid does not match `h x w`.
    pub fn assemble_patches(
        &mut self,
        a: Var,
        ph: usize,
        pw: usize,
        h: usize,
        w: usize,
    ) -> Result<Var> {
        self.check(a)?;
        let av = self.value(a);
        match av.rank() {
            2 => {
                let value = av.assemble_patches(ph, pw, h, w)?;
                Ok(self.push_op(
                    value,
                    vec![a],
                    Box::new(move |g, _| {
                        vec![g.extract_patches(ph, pw).expect("inverse of forward")]
                    }),
                ))
            }
            3 => {
                let batch = av.shape()[0];
                let mut frames = Vec::with_capacity(batch);
                for b in 0..batch {
                    frames.push(av.index_axis(0, b)?.assemble_patches(ph, pw, h, w)?);
                }
                let refs: Vec<&Tensor> = frames.iter().collect();
                let value = Tensor::stack(&refs, 0)?;
                Ok(self.push_op(
                    value,
                    vec![a],
                    Box::new(move |g, _| {
                        let mut outs = Vec::with_capacity(batch);
                        for b in 0..batch {
                            outs.push(
                                g.index_axis(0, b)
                                    .expect("batch axis")
                                    .extract_patches(ph, pw)
                                    .expect("inverse of forward"),
                            );
                        }
                        let refs: Vec<&Tensor> = outs.iter().collect();
                        vec![Tensor::stack(&refs, 0).expect("uniform shapes")]
                    }),
                ))
            }
            r => Err(AutogradError::Tensor(
                snappix_tensor::TensorError::RankMismatch {
                    expected: 2,
                    got: r,
                },
            )),
        }
    }

    /// Tiles a `[t, th, tw]` pattern spatially into `[t, th*gh, tw*gw]`
    /// (the paper's tile-repetitive exposure pattern, Sec. IV).
    ///
    /// Backward sums gradients over all `gh*gw` tile repetitions, which is
    /// exactly how a shared tile pattern accumulates evidence from every
    /// image tile during decorrelation training.
    ///
    /// # Errors
    ///
    /// Fails for non-rank-3 input or zero grid extents.
    pub fn tile_spatial(&mut self, a: Var, gh: usize, gw: usize) -> Result<Var> {
        self.check(a)?;
        let av = self.value(a);
        if av.rank() != 3 {
            return Err(AutogradError::Tensor(
                snappix_tensor::TensorError::RankMismatch {
                    expected: 3,
                    got: av.rank(),
                },
            ));
        }
        if gh == 0 || gw == 0 {
            return Err(AutogradError::InvalidArgument {
                context: "tile grid extents must be positive".to_string(),
            });
        }
        let (t, th, tw) = (av.shape()[0], av.shape()[1], av.shape()[2]);
        let (h, w) = (th * gh, tw * gw);
        let mut value = Tensor::zeros(&[t, h, w]);
        {
            let src = av.as_slice();
            let dst = value.as_mut_slice();
            for f in 0..t {
                for y in 0..h {
                    for x in 0..w {
                        dst[f * h * w + y * w + x] = src[f * th * tw + (y % th) * tw + (x % tw)];
                    }
                }
            }
        }
        Ok(self.push_op(
            value,
            vec![a],
            Box::new(move |g, _| {
                let mut out = Tensor::zeros(&[t, th, tw]);
                let gs = g.as_slice();
                let os = out.as_mut_slice();
                for f in 0..t {
                    for y in 0..h {
                        for x in 0..w {
                            os[f * th * tw + (y % th) * tw + (x % tw)] += gs[f * h * w + y * w + x];
                        }
                    }
                }
                vec![out]
            }),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_gradients;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn concat_numeric() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Tensor::rand_uniform(&mut rng, &[2, 3], -1.0, 1.0);
        let b = Tensor::rand_uniform(&mut rng, &[2, 2], -1.0, 1.0);
        check_gradients(&[a, b], |g, vars| {
            let c = g.concat(&[vars[0], vars[1]], 1)?;
            let s = g.mul(c, c)?;
            g.sum(s)
        })
        .unwrap();
    }

    #[test]
    fn slice_numeric() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Tensor::rand_uniform(&mut rng, &[3, 5], -1.0, 1.0);
        check_gradients(&[a], |g, vars| {
            let s = g.slice_axis(vars[0], 1, 1, 4)?;
            let q = g.mul(s, s)?;
            g.sum(q)
        })
        .unwrap();
    }

    #[test]
    fn gather_rows_accumulates_duplicates() {
        let mut g = Graph::new();
        let a = g.leaf(Tensor::arange(6).reshape(&[3, 2]).unwrap(), true);
        let got = g.gather_rows(a, &[1, 1, 2]).unwrap();
        let s = g.sum(got).unwrap();
        g.backward(s).unwrap();
        // Row 1 was gathered twice, row 2 once, row 0 never.
        assert_eq!(
            g.grad(a).unwrap().as_slice(),
            &[0.0, 0.0, 2.0, 2.0, 1.0, 1.0]
        );
    }

    #[test]
    fn gather_rows_numeric() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = Tensor::rand_uniform(&mut rng, &[4, 3], -1.0, 1.0);
        check_gradients(&[a], |g, vars| {
            let got = g.gather_rows(vars[0], &[0, 2, 2])?;
            let q = g.mul(got, got)?;
            g.sum(q)
        })
        .unwrap();
    }

    #[test]
    fn patches_round_trip_and_numeric() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = Tensor::rand_uniform(&mut rng, &[4, 4], -1.0, 1.0);
        let mut g = Graph::new();
        let v = g.leaf(a.clone(), true);
        let p = g.extract_patches(v, 2, 2).unwrap();
        let back = g.assemble_patches(p, 2, 2, 4, 4).unwrap();
        assert!(g.value(back).approx_eq(&a, 0.0));

        check_gradients(&[a], |g, vars| {
            let p = g.extract_patches(vars[0], 2, 2)?;
            let q = g.mul(p, p)?;
            g.sum(q)
        })
        .unwrap();
    }

    #[test]
    fn batched_patches_numeric() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = Tensor::rand_uniform(&mut rng, &[2, 4, 4], -1.0, 1.0);
        check_gradients(std::slice::from_ref(&a), |g, vars| {
            let p = g.extract_patches(vars[0], 2, 2)?;
            let q = g.mul(p, p)?;
            g.sum(q)
        })
        .unwrap();
        // And the batched inverse.
        let patches = {
            let mut g = Graph::new();
            let v = g.leaf(a, false);
            let p = g.extract_patches(v, 2, 2).unwrap();
            g.value(p).clone()
        };
        check_gradients(&[patches], |g, vars| {
            let f = g.assemble_patches(vars[0], 2, 2, 4, 4)?;
            let q = g.mul(f, f)?;
            g.sum(q)
        })
        .unwrap();
    }

    #[test]
    fn extract_patches_rejects_bad_rank() {
        let mut g = Graph::new();
        let v = g.leaf(Tensor::zeros(&[4]), true);
        assert!(g.extract_patches(v, 2, 2).is_err());
        let v4 = g.leaf(Tensor::zeros(&[1, 1, 4, 4]), true);
        assert!(g.extract_patches(v4, 2, 2).is_err());
    }

    #[test]
    fn tile_spatial_repeats_pattern() {
        let mut g = Graph::new();
        let pat = g.leaf(Tensor::arange(4).reshape(&[1, 2, 2]).unwrap(), true);
        let tiled = g.tile_spatial(pat, 2, 2).unwrap();
        assert_eq!(g.value(tiled).shape(), &[1, 4, 4]);
        // Top-left of every tile is element 0.
        assert_eq!(g.value(tiled).get(&[0, 0, 0]).unwrap(), 0.0);
        assert_eq!(g.value(tiled).get(&[0, 0, 2]).unwrap(), 0.0);
        assert_eq!(g.value(tiled).get(&[0, 2, 2]).unwrap(), 0.0);
        assert_eq!(g.value(tiled).get(&[0, 3, 3]).unwrap(), 3.0);
        let s = g.sum(tiled).unwrap();
        g.backward(s).unwrap();
        // Each pattern element contributes to 4 tiles.
        assert_eq!(g.grad(pat).unwrap().as_slice(), &[4.0; 4]);
    }

    #[test]
    fn tile_spatial_numeric() {
        let mut rng = StdRng::seed_from_u64(6);
        let a = Tensor::rand_uniform(&mut rng, &[2, 2, 3], -1.0, 1.0);
        check_gradients(&[a], |g, vars| {
            let t = g.tile_spatial(vars[0], 2, 2)?;
            let q = g.mul(t, t)?;
            g.sum(q)
        })
        .unwrap();
    }

    #[test]
    fn tile_spatial_validation() {
        let mut g = Graph::new();
        let v2 = g.leaf(Tensor::zeros(&[2, 2]), true);
        assert!(g.tile_spatial(v2, 2, 2).is_err());
        let v3 = g.leaf(Tensor::zeros(&[1, 2, 2]), true);
        assert!(g.tile_spatial(v3, 0, 2).is_err());
    }
}
