//! Pointwise (elementwise) differentiable operations.

use crate::graph::reduce_to_shape;
use crate::{Graph, Result, Var};
use snappix_tensor::Tensor;

impl Graph {
    /// Elementwise sum with broadcasting.
    ///
    /// # Errors
    ///
    /// Fails when the operand shapes are not broadcast-compatible or a
    /// handle is foreign.
    pub fn add(&mut self, a: Var, b: Var) -> Result<Var> {
        self.check(a)?;
        self.check(b)?;
        let value = self.value(a).add(self.value(b))?;
        Ok(self.push_op(
            value,
            vec![a, b],
            Box::new(|g, parents| {
                vec![
                    reduce_to_shape(g, parents[0].shape()),
                    reduce_to_shape(g, parents[1].shape()),
                ]
            }),
        ))
    }

    /// Elementwise difference with broadcasting.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Graph::add`].
    pub fn sub(&mut self, a: Var, b: Var) -> Result<Var> {
        self.check(a)?;
        self.check(b)?;
        let value = self.value(a).sub(self.value(b))?;
        Ok(self.push_op(
            value,
            vec![a, b],
            Box::new(|g, parents| {
                vec![
                    reduce_to_shape(g, parents[0].shape()),
                    reduce_to_shape(&g.neg(), parents[1].shape()),
                ]
            }),
        ))
    }

    /// Elementwise product with broadcasting.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Graph::add`].
    pub fn mul(&mut self, a: Var, b: Var) -> Result<Var> {
        self.check(a)?;
        self.check(b)?;
        let value = self.value(a).mul(self.value(b))?;
        Ok(self.push_op(
            value,
            vec![a, b],
            Box::new(|g, parents| {
                let da = g.mul(parents[1]).expect("same broadcast as forward");
                let db = g.mul(parents[0]).expect("same broadcast as forward");
                vec![
                    reduce_to_shape(&da, parents[0].shape()),
                    reduce_to_shape(&db, parents[1].shape()),
                ]
            }),
        ))
    }

    /// Elementwise quotient with broadcasting.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Graph::add`].
    pub fn div(&mut self, a: Var, b: Var) -> Result<Var> {
        self.check(a)?;
        self.check(b)?;
        let value = self.value(a).div(self.value(b))?;
        Ok(self.push_op(
            value,
            vec![a, b],
            Box::new(|g, parents| {
                let da = g.div(parents[1]).expect("same broadcast as forward");
                // db = -g * a / b^2
                let b2 = parents[1].mul(parents[1]).expect("same shape");
                let db = g
                    .mul(parents[0])
                    .expect("same broadcast as forward")
                    .div(&b2)
                    .expect("same broadcast as forward")
                    .neg();
                vec![
                    reduce_to_shape(&da, parents[0].shape()),
                    reduce_to_shape(&db, parents[1].shape()),
                ]
            }),
        ))
    }

    /// Elementwise negation.
    ///
    /// # Errors
    ///
    /// Fails for a foreign handle.
    pub fn neg(&mut self, a: Var) -> Result<Var> {
        self.check(a)?;
        let value = self.value(a).neg();
        Ok(self.push_op(value, vec![a], Box::new(|g, _| vec![g.neg()])))
    }

    /// Multiplies every element by the constant `s`.
    ///
    /// # Errors
    ///
    /// Fails for a foreign handle.
    pub fn scale(&mut self, a: Var, s: f32) -> Result<Var> {
        self.check(a)?;
        let value = self.value(a).scale(s);
        Ok(self.push_op(value, vec![a], Box::new(move |g, _| vec![g.scale(s)])))
    }

    /// Adds the constant `s` to every element.
    ///
    /// # Errors
    ///
    /// Fails for a foreign handle.
    pub fn add_scalar(&mut self, a: Var, s: f32) -> Result<Var> {
        self.check(a)?;
        let value = self.value(a).add_scalar(s);
        Ok(self.push_op(value, vec![a], Box::new(|g, _| vec![g.clone()])))
    }

    /// Elementwise power with a constant (float) exponent.
    ///
    /// # Errors
    ///
    /// Fails for a foreign handle.
    pub fn powf(&mut self, a: Var, p: f32) -> Result<Var> {
        self.check(a)?;
        let value = self.value(a).map(|x| x.powf(p));
        Ok(self.push_op(
            value,
            vec![a],
            Box::new(move |g, parents| {
                let d = parents[0].map(|x| p * x.powf(p - 1.0));
                vec![g.mul(&d).expect("same shape")]
            }),
        ))
    }

    /// Elementwise exponential.
    ///
    /// # Errors
    ///
    /// Fails for a foreign handle.
    pub fn exp(&mut self, a: Var) -> Result<Var> {
        self.check(a)?;
        let value = self.value(a).exp();
        let cached = value.clone();
        Ok(self.push_op(
            value,
            vec![a],
            Box::new(move |g, _| vec![g.mul(&cached).expect("same shape")]),
        ))
    }

    /// Elementwise natural logarithm.
    ///
    /// # Errors
    ///
    /// Fails for a foreign handle.
    pub fn ln(&mut self, a: Var) -> Result<Var> {
        self.check(a)?;
        let value = self.value(a).ln();
        Ok(self.push_op(
            value,
            vec![a],
            Box::new(|g, parents| {
                let d = parents[0].map(|x| 1.0 / x);
                vec![g.mul(&d).expect("same shape")]
            }),
        ))
    }

    /// Rectified linear unit.
    ///
    /// # Errors
    ///
    /// Fails for a foreign handle.
    pub fn relu(&mut self, a: Var) -> Result<Var> {
        self.check(a)?;
        let value = self.value(a).map(|x| x.max(0.0));
        Ok(self.push_op(
            value,
            vec![a],
            Box::new(|g, parents| {
                let d = parents[0].map(|x| if x > 0.0 { 1.0 } else { 0.0 });
                vec![g.mul(&d).expect("same shape")]
            }),
        ))
    }

    /// Gaussian error linear unit (tanh approximation).
    ///
    /// # Errors
    ///
    /// Fails for a foreign handle.
    pub fn gelu(&mut self, a: Var) -> Result<Var> {
        self.check(a)?;
        const C: f32 = 0.797_884_6; // sqrt(2/pi)
        const A: f32 = 0.044_715;
        let value = self.value(a).map(|x| {
            let inner = C * (x + A * x * x * x);
            0.5 * x * (1.0 + inner.tanh())
        });
        Ok(self.push_op(
            value,
            vec![a],
            Box::new(|g, parents| {
                let d = parents[0].map(|x| {
                    let inner = C * (x + A * x * x * x);
                    let t = inner.tanh();
                    let sech2 = 1.0 - t * t;
                    0.5 * (1.0 + t) + 0.5 * x * sech2 * C * (1.0 + 3.0 * A * x * x)
                });
                vec![g.mul(&d).expect("same shape")]
            }),
        ))
    }

    /// Logistic sigmoid.
    ///
    /// # Errors
    ///
    /// Fails for a foreign handle.
    pub fn sigmoid(&mut self, a: Var) -> Result<Var> {
        self.check(a)?;
        let value = self.value(a).map(|x| 1.0 / (1.0 + (-x).exp()));
        let cached = value.clone();
        Ok(self.push_op(
            value,
            vec![a],
            Box::new(move |g, _| {
                let d = cached.map(|s| s * (1.0 - s));
                vec![g.mul(&d).expect("same shape")]
            }),
        ))
    }

    /// Hyperbolic tangent.
    ///
    /// # Errors
    ///
    /// Fails for a foreign handle.
    pub fn tanh(&mut self, a: Var) -> Result<Var> {
        self.check(a)?;
        let value = self.value(a).map(f32::tanh);
        let cached = value.clone();
        Ok(self.push_op(
            value,
            vec![a],
            Box::new(move |g, _| {
                let d = cached.map(|t| 1.0 - t * t);
                vec![g.mul(&d).expect("same shape")]
            }),
        ))
    }

    /// Straight-through binarization (paper Sec. III).
    ///
    /// Forward: `1.0` where the input exceeds `threshold`, else `0.0`.
    /// Backward: the gradient passes through unchanged, as in the
    /// straight-through estimator of Bengio et al. used by the paper to
    /// learn binary exposure masks.
    ///
    /// # Errors
    ///
    /// Fails for a foreign handle.
    pub fn binarize_ste(&mut self, a: Var, threshold: f32) -> Result<Var> {
        self.check(a)?;
        let value = self.value(a).map(|x| if x > threshold { 1.0 } else { 0.0 });
        Ok(self.push_op(value, vec![a], Box::new(|g, _| vec![g.clone()])))
    }

    /// Inverted dropout with the given keep probability mask.
    ///
    /// The caller supplies the binary `mask` (typically from
    /// [`Tensor::rand_bernoulli`]) so that randomness stays seeded at the
    /// call site; surviving activations are rescaled by `1 / keep_prob`.
    ///
    /// # Errors
    ///
    /// Fails when the mask shape differs from the input or `keep_prob` is
    /// not in `(0, 1]`.
    pub fn dropout(&mut self, a: Var, mask: &Tensor, keep_prob: f32) -> Result<Var> {
        self.check(a)?;
        if !(0.0..=1.0).contains(&keep_prob) || keep_prob == 0.0 {
            return Err(crate::AutogradError::InvalidArgument {
                context: format!("keep_prob {keep_prob} outside (0, 1]"),
            });
        }
        let scaled_mask = mask.scale(1.0 / keep_prob);
        let value = self.value(a).mul(&scaled_mask)?;
        Ok(self.push_op(
            value,
            vec![a],
            Box::new(move |g, _| vec![g.mul(&scaled_mask).expect("same shape")]),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_gradients;

    fn leaf2x3(g: &mut Graph) -> Var {
        g.leaf(
            Tensor::from_vec(vec![0.5, -1.0, 2.0, 0.1, -0.2, 1.5], &[2, 3]).unwrap(),
            true,
        )
    }

    #[test]
    fn add_broadcast_grads() {
        let mut g = Graph::new();
        let a = leaf2x3(&mut g);
        let b = g.leaf(
            Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]).unwrap(),
            true,
        );
        let s = g.add(a, b).unwrap();
        let loss = g.sum(s).unwrap();
        g.backward(loss).unwrap();
        assert_eq!(g.grad(a).unwrap().as_slice(), &[1.0; 6]);
        assert_eq!(g.grad(b).unwrap().as_slice(), &[2.0, 2.0, 2.0]);
    }

    #[test]
    fn mul_grads_are_cross_terms() {
        let mut g = Graph::new();
        let a = g.leaf(Tensor::from_vec(vec![2.0, 3.0], &[2]).unwrap(), true);
        let b = g.leaf(Tensor::from_vec(vec![5.0, 7.0], &[2]).unwrap(), true);
        let m = g.mul(a, b).unwrap();
        let loss = g.sum(m).unwrap();
        g.backward(loss).unwrap();
        assert_eq!(g.grad(a).unwrap().as_slice(), &[5.0, 7.0]);
        assert_eq!(g.grad(b).unwrap().as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn div_matches_numeric_gradient() {
        let x = Tensor::from_vec(vec![1.0, 2.0, -3.0, 0.5], &[2, 2]).unwrap();
        let y = Tensor::from_vec(vec![2.0, 4.0, 1.5, -2.0], &[2, 2]).unwrap();
        check_gradients(&[x, y], |g, vars| {
            let d = g.div(vars[0], vars[1])?;
            g.sum(d)
        })
        .unwrap();
    }

    #[test]
    fn sub_and_neg_numeric() {
        let x = Tensor::from_vec(vec![1.0, -2.0], &[2]).unwrap();
        let y = Tensor::from_vec(vec![0.5, 3.0], &[2]).unwrap();
        check_gradients(&[x, y], |g, vars| {
            let d = g.sub(vars[0], vars[1])?;
            let n = g.neg(d)?;
            g.sum(n)
        })
        .unwrap();
    }

    #[test]
    fn scalar_ops_numeric() {
        let x = Tensor::from_vec(vec![1.0, -2.0, 0.3], &[3]).unwrap();
        check_gradients(std::slice::from_ref(&x), |g, vars| {
            let a = g.scale(vars[0], 3.0)?;
            let b = g.add_scalar(a, -1.0)?;
            g.sum(b)
        })
        .unwrap();
        check_gradients(&[x.map(f32::abs).add_scalar(0.5)], |g, vars| {
            let p = g.powf(vars[0], 1.7)?;
            g.sum(p)
        })
        .unwrap();
    }

    #[test]
    fn exp_ln_numeric() {
        let x = Tensor::from_vec(vec![0.5, 1.5, 2.5], &[3]).unwrap();
        check_gradients(std::slice::from_ref(&x), |g, vars| {
            let e = g.exp(vars[0])?;
            g.sum(e)
        })
        .unwrap();
        check_gradients(&[x], |g, vars| {
            let l = g.ln(vars[0])?;
            g.sum(l)
        })
        .unwrap();
    }

    #[test]
    fn activations_numeric() {
        // Avoid 0.0 for relu (kink).
        let x = Tensor::from_vec(vec![0.7, -1.3, 2.1, -0.4], &[4]).unwrap();
        for f in ["relu", "gelu", "sigmoid", "tanh"] {
            check_gradients(std::slice::from_ref(&x), |g, vars| {
                let y = match f {
                    "relu" => g.relu(vars[0])?,
                    "gelu" => g.gelu(vars[0])?,
                    "sigmoid" => g.sigmoid(vars[0])?,
                    _ => g.tanh(vars[0])?,
                };
                g.sum(y)
            })
            .unwrap_or_else(|e| panic!("{f}: {e}"));
        }
    }

    #[test]
    fn binarize_ste_forward_and_passthrough_grad() {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::from_vec(vec![-0.5, 0.2, 0.9], &[3]).unwrap(), true);
        let b = g.binarize_ste(x, 0.0).unwrap();
        assert_eq!(g.value(b).as_slice(), &[0.0, 1.0, 1.0]);
        let s = g.sum(b).unwrap();
        g.backward(s).unwrap();
        // Straight-through: gradient of sum is all-ones, passed unchanged.
        assert_eq!(g.grad(x).unwrap().as_slice(), &[1.0, 1.0, 1.0]);
    }

    #[test]
    fn dropout_scales_survivors() {
        let mut g = Graph::new();
        let x = g.leaf(Tensor::ones(&[4]), true);
        let mask = Tensor::from_vec(vec![1.0, 0.0, 1.0, 0.0], &[4]).unwrap();
        let d = g.dropout(x, &mask, 0.5).unwrap();
        assert_eq!(g.value(d).as_slice(), &[2.0, 0.0, 2.0, 0.0]);
        let s = g.sum(d).unwrap();
        g.backward(s).unwrap();
        assert_eq!(g.grad(x).unwrap().as_slice(), &[2.0, 0.0, 2.0, 0.0]);
        assert!(g.dropout(x, &mask, 0.0).is_err());
    }
}
