use snappix_tensor::TensorError;
use std::fmt;

/// Error type for autograd operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AutogradError {
    /// An underlying tensor operation failed (shape mismatch etc.).
    Tensor(TensorError),
    /// `backward` was called on a non-scalar variable.
    NotScalar {
        /// Shape of the offending variable.
        shape: Vec<usize>,
    },
    /// A `Var` referred to a node outside this graph.
    InvalidVar {
        /// Index carried by the variable.
        index: usize,
        /// Number of nodes currently in the graph.
        nodes: usize,
    },
    /// An operation received arguments that are invalid for reasons other
    /// than tensor shapes.
    InvalidArgument {
        /// Human-readable description of the problem.
        context: String,
    },
}

impl fmt::Display for AutogradError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AutogradError::Tensor(e) => write!(f, "tensor error: {e}"),
            AutogradError::NotScalar { shape } => {
                write!(f, "backward requires a scalar, got shape {shape:?}")
            }
            AutogradError::InvalidVar { index, nodes } => {
                write!(
                    f,
                    "variable {index} does not belong to this graph ({nodes} nodes)"
                )
            }
            AutogradError::InvalidArgument { context } => {
                write!(f, "invalid argument: {context}")
            }
        }
    }
}

impl std::error::Error for AutogradError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AutogradError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for AutogradError {
    fn from(e: TensorError) -> Self {
        AutogradError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = AutogradError::from(TensorError::InvalidArgument {
            context: "x".into(),
        });
        assert!(e.to_string().contains("tensor error"));
        assert!(std::error::Error::source(&e).is_some());
        let ns = AutogradError::NotScalar { shape: vec![2, 2] };
        assert!(ns.to_string().contains("[2, 2]"));
        assert!(std::error::Error::source(&ns).is_none());
    }
}
