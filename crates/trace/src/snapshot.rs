//! Merged, deterministically ordered views over the per-thread rings.

use crate::chrome;
use crate::record::SpanRecord;

/// A merged copy of every lane's records, ordered by
/// `(start_us, lane, span_id)`.
///
/// Snapshots are plain data: clone them, diff them with `==` (the
/// fleet replay suite does), filter them, export them.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceSnapshot {
    /// Every record still resident in the rings, merged and sorted.
    pub records: Vec<SpanRecord>,
    /// Records rotated out of full rings since the tracer was built
    /// (or last [`cleared`](crate::Tracer::clear)).
    pub dropped: u64,
    /// The lanes that have recorded at least one span, sorted by id.
    pub lanes: Vec<LaneInfo>,
}

/// One recording lane (usually a thread; a virtual node in fleet
/// traces).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneInfo {
    /// The lane id records carry in [`SpanRecord::lane`].
    pub lane: u32,
    /// The recording thread's name at registration (or `lane-N`).
    pub name: String,
}

impl TraceSnapshot {
    /// Number of records in the snapshot.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the snapshot holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The records belonging to one trace, in snapshot order.
    pub fn trace(&self, trace_id: u64) -> impl Iterator<Item = &SpanRecord> {
        self.records.iter().filter(move |r| r.trace_id == trace_id)
    }

    /// Every distinct non-background trace id, in first-seen order.
    pub fn trace_ids(&self) -> Vec<u64> {
        let mut ids = Vec::new();
        for record in &self.records {
            if record.trace_id != 0 && !ids.contains(&record.trace_id) {
                ids.push(record.trace_id);
            }
        }
        ids
    }

    /// Keep only the records `keep` accepts (lanes and `dropped` are
    /// preserved). `/debug/trace` uses this to bound its response to
    /// the most recent traces.
    pub fn filtered(&self, keep: impl Fn(&SpanRecord) -> bool) -> TraceSnapshot {
        TraceSnapshot {
            records: self.records.iter().filter(|r| keep(r)).cloned().collect(),
            dropped: self.dropped,
            lanes: self.lanes.clone(),
        }
    }

    /// Render the snapshot as Chrome trace-event JSON — one complete
    /// (`"ph":"X"`) event per record plus thread-name metadata — ready
    /// for Perfetto or `chrome://tracing`.
    pub fn to_chrome_json(&self) -> String {
        chrome::to_chrome_json(self)
    }
}
