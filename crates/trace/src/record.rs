//! The wire-level span record and its argument values.

use std::fmt;

/// One closed span: a named interval on a lane, linked into a trace.
///
/// Records are value types — cloning a snapshot clones these — and
/// compare bit-for-bit with `==`, which is what the fleet replay suite
/// leans on: a simulation that is deterministic must produce `Eq`
/// traces regardless of driver/worker/thread counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// The request-scoped trace this span belongs to. `0` means
    /// *background*: work not attributable to a single request (e.g. a
    /// worker's idle bookkeeping).
    pub trace_id: u64,
    /// This span's own id, unique within the tracer (or within its
    /// lane for raw records, see [`Tracer::record_raw`]).
    ///
    /// [`Tracer::record_raw`]: crate::Tracer::record_raw
    pub span_id: u64,
    /// The enclosing span's id, or `0` for a root span.
    pub parent: u64,
    /// Stage name (`"sense"`, `"batch"`, `"queue_wait"`, ...). Static
    /// so recording never allocates for the common case.
    pub name: &'static str,
    /// Microseconds since the tracer's epoch when the span opened.
    pub start_us: u64,
    /// Microseconds since the tracer's epoch when the span closed.
    pub end_us: u64,
    /// The lane (usually: thread) the span was recorded on. The fleet
    /// simulator repurposes lanes as node ids so a fleet trace renders
    /// one row per virtual node.
    pub lane: u32,
    /// Optional key/value payload (batch size, label, HTTP status...).
    pub args: Vec<(&'static str, ArgValue)>,
}

impl SpanRecord {
    /// Duration of the span in microseconds (saturating, so a clock
    /// that steps backwards cannot panic here).
    pub fn duration_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }

    /// Look up an argument by key (first match wins).
    pub fn arg(&self, key: &str) -> Option<&ArgValue> {
        self.args.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }
}

/// An argument value attached to a span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgValue {
    /// An unsigned integer (counts, ids, sizes).
    U64(u64),
    /// A string (labels, endpoint names). Escaped by the JSON exporter.
    Str(String),
}

impl ArgValue {
    /// The integer payload, if this is a [`ArgValue::U64`].
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            ArgValue::U64(v) => Some(*v),
            ArgValue::Str(_) => None,
        }
    }

    /// The string payload, if this is a [`ArgValue::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            ArgValue::U64(_) => None,
            ArgValue::Str(s) => Some(s),
        }
    }
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}

impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::U64(v as u64)
    }
}

impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_string())
    }
}

impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

impl fmt::Display for ArgValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgValue::U64(v) => write!(f, "{v}"),
            ArgValue::Str(s) => f.write_str(s),
        }
    }
}
