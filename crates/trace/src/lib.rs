//! `snappix-trace`: cross-layer request tracing for the SnapPix stack.
//!
//! The serving stack spans five runtime layers (gateway → serve →
//! pipeline → stream → fleet), and before this crate its observability
//! was counters-only: Prometheus families answer "how many" and "how
//! slow on average", but not *where one request's 40 ms went* — queue
//! wait, batch assembly, sense, or model forward. This crate answers
//! that question with a low-overhead span recorder every layer shares:
//!
//! * **[`Tracer`]** — a cheap clonable handle. A *disabled* tracer
//!   ([`Tracer::disabled`]) is a `None` inside; every call on it is a
//!   branch on an `Option` and returns inert guards, so the hot path
//!   pays almost nothing when tracing is off (gated by the
//!   `trace_overhead` bench: <2% on the serve benchmark).
//! * **[`SpanGuard`]** — RAII: [`Tracer::span`] opens a span and the
//!   guard's `Drop` closes it, recording
//!   `(trace_id, span_id, parent, name, t_start, t_end, lane)` into a
//!   per-thread bounded ring buffer. Spans auto-parent: a guard opened
//!   while another is live on the same thread becomes its child, which
//!   is how pipeline stage spans nest under the serving layer's batch
//!   span without any signature changes between the crates.
//! * **[`DetachedSpan`]** — a `Send` span for intervals that start on
//!   one thread and end on another (a request's queue wait starts on
//!   the client thread and ends when a worker claims the batch).
//! * **[`TraceSnapshot`]** — [`Tracer::snapshot`] merges every
//!   thread's ring into one deterministically ordered record list,
//!   exportable as Chrome trace-event JSON
//!   ([`TraceSnapshot::to_chrome_json`]) that loads directly into
//!   Perfetto or `chrome://tracing`.
//!
//! Time comes from a monotonic clock by default, but tests (and the
//! virtual-time fleet simulator) inject their own microsecond clock via
//! [`TracerBuilder::with_clock`], so traces are deterministic where
//! they need to be.
//!
//! See `docs/TRACING.md` for the span taxonomy the stack emits and how
//! to read a trace in Perfetto.

#![warn(missing_docs)]

mod chrome;
mod record;
mod snapshot;
mod tracer;

pub use record::{ArgValue, SpanRecord};
pub use snapshot::{LaneInfo, TraceSnapshot};
pub use tracer::{DetachedSpan, SpanCtx, SpanGuard, Tracer, TracerBuilder};

/// Convenience re-exports for `use snappix_trace::prelude::*`.
pub mod prelude {
    pub use crate::{ArgValue, SpanCtx, SpanRecord, TraceSnapshot, Tracer};
}
