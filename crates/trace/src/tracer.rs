//! The span recorder: tracer handle, RAII guards, per-thread rings.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

use crate::record::{ArgValue, SpanRecord};
use crate::snapshot::{LaneInfo, TraceSnapshot};

/// Default per-lane ring capacity: enough for tens of thousands of
/// requests' spans before the oldest records rotate out.
const DEFAULT_RING_CAPACITY: usize = 65_536;

/// Tracer handles need distinct identities so one thread can hold
/// spans for several tracers at once (e.g. a fleet run's private
/// tracer next to a server's).
static TRACER_IDS: AtomicU64 = AtomicU64::new(1);

/// A cheap, clonable handle to a span recorder — or to nothing.
///
/// The two modes are the whole point:
///
/// * [`Tracer::disabled`] holds no recorder at all. Every method is a
///   branch on an `Option` returning an inert value, so threading a
///   disabled tracer through the hot path costs <2% on the serve
///   benchmark (gated by `benches/trace_overhead.rs`).
/// * [`Tracer::new`] / [`TracerBuilder::build`] hold a shared recorder:
///   spans go into per-thread bounded ring buffers (no contention
///   between recording threads; a mutex per ring is only ever fought
///   over by [`Tracer::snapshot`]).
///
/// Clones share the recorder; snapshotting from any clone sees every
/// thread's records.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<Inner>>,
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

/// Builds an enabled [`Tracer`] with a custom ring capacity or clock.
pub struct TracerBuilder {
    capacity: usize,
    clock: Option<Arc<dyn Fn() -> u64 + Send + Sync>>,
}

impl fmt::Debug for TracerBuilder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TracerBuilder")
            .field("capacity", &self.capacity)
            .field("injected_clock", &self.clock.is_some())
            .finish()
    }
}

impl TracerBuilder {
    /// Cap each per-thread ring at `capacity` records (min 1). When a
    /// ring is full the oldest record rotates out and the snapshot's
    /// `dropped` counter grows — recording never blocks or allocates
    /// beyond the cap.
    pub fn ring_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity.max(1);
        self
    }

    /// Replace the monotonic clock with `clock`, which must return
    /// microseconds since an epoch of its choosing. Tests inject a
    /// counter for deterministic timestamps; the fleet simulator
    /// records virtual time directly via [`Tracer::record_raw`]
    /// instead.
    pub fn with_clock(mut self, clock: impl Fn() -> u64 + Send + Sync + 'static) -> Self {
        self.clock = Some(Arc::new(clock));
        self
    }

    /// Build the enabled tracer.
    pub fn build(self) -> Tracer {
        let clock = match self.clock {
            Some(f) => Clock::Injected(f),
            None => Clock::Monotonic(Instant::now()),
        };
        Tracer {
            inner: Some(Arc::new(Inner {
                id: TRACER_IDS.fetch_add(1, Ordering::Relaxed),
                clock,
                capacity: self.capacity,
                next_trace: AtomicU64::new(1),
                next_span: AtomicU64::new(1),
                next_lane: AtomicU32::new(1),
                lanes: Mutex::new(Vec::new()),
            })),
        }
    }
}

impl Tracer {
    /// An enabled tracer with default capacity and a monotonic clock.
    #[allow(clippy::new_without_default)] // `Default` is the *disabled* tracer
    pub fn new() -> Self {
        Self::builder().build()
    }

    /// Start configuring an enabled tracer.
    pub fn builder() -> TracerBuilder {
        TracerBuilder {
            capacity: DEFAULT_RING_CAPACITY,
            clock: None,
        }
    }

    /// The inert tracer: records nothing, allocates nothing. This is
    /// also what [`Tracer::default`] returns, so builders that carry a
    /// tracer field default to tracing off.
    pub fn disabled() -> Self {
        Tracer { inner: None }
    }

    /// Whether spans are actually recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Allocate a fresh request-scoped trace id (`0` when disabled —
    /// `0` is the reserved *background* trace).
    pub fn new_trace_id(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.next_trace.fetch_add(1, Ordering::Relaxed),
            None => 0,
        }
    }

    /// Microseconds since the tracer's epoch (`0` when disabled).
    pub fn now_us(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.clock.now_us(),
            None => 0,
        }
    }

    /// The context children should attach to right now on this thread:
    /// the innermost live span, or the zero context if none is open.
    pub fn current(&self) -> SpanCtx {
        match &self.inner {
            Some(inner) => with_slot(inner, |slot| slot.stack.last().copied().unwrap_or_default()),
            None => SpanCtx::default(),
        }
    }

    /// Open a span that closes when the guard drops. The span inherits
    /// the innermost live span on this thread as parent (and its trace
    /// id), so nested guards build a tree with no plumbing: the serve
    /// worker opens `batch`, calls into the pipeline, and the
    /// pipeline's `sense`/`forward`/`readout` guards land as children.
    pub fn span(&self, name: &'static str) -> SpanGuard {
        let Some(inner) = &self.inner else {
            return SpanGuard::inert();
        };
        let start_us = inner.clock.now_us();
        with_slot(inner, |slot| {
            let parent = slot.stack.last().copied().unwrap_or_default();
            let ctx = SpanCtx {
                trace_id: parent.trace_id,
                span_id: inner.next_span.fetch_add(1, Ordering::Relaxed),
            };
            slot.stack.push(ctx);
            SpanGuard {
                state: Some(GuardState {
                    tracer: Arc::clone(inner),
                    ctx,
                    parent: parent.span_id,
                    name,
                    start_us,
                    args: Vec::new(),
                }),
                _not_send: PhantomData,
            }
        })
    }

    /// Open a span under an explicit parent context instead of the
    /// thread's innermost span — how a worker thread re-enters a
    /// request's trace after the request crossed the queue. The guard
    /// still lands on this thread's stack, so further [`Tracer::span`]
    /// calls nest under it.
    pub fn span_in(&self, name: &'static str, ctx: SpanCtx) -> SpanGuard {
        let Some(inner) = &self.inner else {
            return SpanGuard::inert();
        };
        let start_us = inner.clock.now_us();
        with_slot(inner, |slot| {
            let own = SpanCtx {
                trace_id: ctx.trace_id,
                span_id: inner.next_span.fetch_add(1, Ordering::Relaxed),
            };
            slot.stack.push(own);
            SpanGuard {
                state: Some(GuardState {
                    tracer: Arc::clone(inner),
                    ctx: own,
                    parent: ctx.span_id,
                    name,
                    start_us,
                    args: Vec::new(),
                }),
                _not_send: PhantomData,
            }
        })
    }

    /// Open a `Send` span that can finish on a different thread than it
    /// started on (it never touches the per-thread span stack, so it
    /// does not become anyone's implicit parent). This is the queue
    /// wait: admission opens it on the client thread, the worker that
    /// claims the batch finishes it.
    pub fn span_detached(&self, name: &'static str, ctx: SpanCtx) -> DetachedSpan {
        let Some(inner) = &self.inner else {
            return DetachedSpan { state: None };
        };
        let start_us = inner.clock.now_us();
        DetachedSpan {
            state: Some(GuardState {
                tracer: Arc::clone(inner),
                ctx: SpanCtx {
                    trace_id: ctx.trace_id,
                    span_id: inner.next_span.fetch_add(1, Ordering::Relaxed),
                },
                parent: ctx.span_id,
                name,
                start_us,
                args: Vec::new(),
            }),
        }
    }

    /// Record an already-measured interval under `(trace_id, parent)`
    /// with a freshly allocated span id (returned; `0` when disabled).
    /// The serving layer uses this to give every member request of a
    /// batch its own `compute` span over the one measured forward pass.
    pub fn record_span(
        &self,
        name: &'static str,
        trace_id: u64,
        parent: u64,
        start_us: u64,
        end_us: u64,
        args: Vec<(&'static str, ArgValue)>,
    ) -> u64 {
        let Some(inner) = &self.inner else { return 0 };
        let span_id = inner.next_span.fetch_add(1, Ordering::Relaxed);
        inner.push_here(SpanRecord {
            trace_id,
            span_id,
            parent,
            name,
            start_us,
            end_us,
            lane: 0, // overwritten with the recording lane by push_here
            args,
        });
        span_id
    }

    /// Record a fully caller-specified record, lane and span id
    /// included. The record lands in the calling thread's ring (rings
    /// are storage, not identity: the record's own `lane` field is
    /// what the snapshot and the exporter believe). The fleet
    /// simulator uses this to put every virtual node on its own lane
    /// with its own deterministic per-node span sequence, no matter
    /// which driver thread happened to advance the node.
    ///
    /// Callers must keep `(lane, span_id)` pairs unique, or snapshot
    /// ordering (sorted by `(start_us, lane, span_id)`) loses its
    /// determinism guarantee.
    pub fn record_raw(&self, record: SpanRecord) {
        if let Some(inner) = &self.inner {
            inner.push_here_keep_lane(record);
        }
    }

    /// Merge every thread's ring into one deterministically ordered
    /// snapshot (sorted by `(start_us, lane, span_id)`). Records stay
    /// in the rings — snapshots are cheap reads, and `/debug/trace`
    /// can serve them repeatedly.
    pub fn snapshot(&self) -> TraceSnapshot {
        let Some(inner) = &self.inner else {
            return TraceSnapshot::default();
        };
        let lanes: Vec<Arc<Lane>> = lock(&inner.lanes).clone();
        let mut records = Vec::new();
        let mut dropped = 0u64;
        let mut infos = Vec::with_capacity(lanes.len());
        for lane in &lanes {
            let ring = lock(&lane.ring);
            records.extend(ring.buf.iter().cloned());
            dropped += ring.dropped;
            infos.push(LaneInfo {
                lane: lane.lane,
                name: lane.name.clone(),
            });
        }
        records.sort_by_key(|r| (r.start_us, r.lane, r.span_id));
        infos.sort_by_key(|info| info.lane);
        TraceSnapshot {
            records,
            dropped,
            lanes: infos,
        }
    }

    /// Drain every ring (the drop counters too). Benchmarks use this
    /// between phases so one phase's spans cannot rotate out another's.
    pub fn clear(&self) {
        if let Some(inner) = &self.inner {
            let lanes: Vec<Arc<Lane>> = lock(&inner.lanes).clone();
            for lane in &lanes {
                let mut ring = lock(&lane.ring);
                ring.buf.clear();
                ring.dropped = 0;
            }
        }
    }
}

/// The `(trace_id, span_id)` pair children parent themselves to.
///
/// The zero value ([`SpanCtx::default`]) is "no context": background
/// trace, root parent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanCtx {
    /// The request-scoped trace id (`0` = background).
    pub trace_id: u64,
    /// The span children should use as `parent` (`0` = root).
    pub span_id: u64,
}

enum Clock {
    Monotonic(Instant),
    Injected(Arc<dyn Fn() -> u64 + Send + Sync>),
}

impl Clock {
    fn now_us(&self) -> u64 {
        match self {
            Clock::Monotonic(epoch) => {
                u64::try_from(epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
            }
            Clock::Injected(f) => f(),
        }
    }
}

struct Inner {
    id: u64,
    clock: Clock,
    capacity: usize,
    next_trace: AtomicU64,
    next_span: AtomicU64,
    next_lane: AtomicU32,
    lanes: Mutex<Vec<Arc<Lane>>>,
}

impl Inner {
    /// Push into the calling thread's ring, stamping the ring's lane id
    /// onto the record.
    fn push_here(self: &Arc<Self>, mut record: SpanRecord) {
        with_slot(self, |slot| {
            record.lane = slot.lane.lane;
            slot.lane.push(record);
        });
    }

    /// Push into the calling thread's ring, keeping the record's own
    /// lane field.
    fn push_here_keep_lane(self: &Arc<Self>, record: SpanRecord) {
        with_slot(self, |slot| slot.lane.push(record));
    }

    fn register_lane(&self) -> Arc<Lane> {
        let id = self.next_lane.fetch_add(1, Ordering::Relaxed);
        let name = std::thread::current()
            .name()
            .map(str::to_string)
            .unwrap_or_else(|| format!("lane-{id}"));
        let lane = Arc::new(Lane {
            lane: id,
            name,
            ring: Mutex::new(Ring {
                buf: VecDeque::new(),
                dropped: 0,
                cap: self.capacity,
            }),
        });
        lock(&self.lanes).push(Arc::clone(&lane));
        lane
    }
}

struct Lane {
    lane: u32,
    name: String,
    ring: Mutex<Ring>,
}

impl Lane {
    fn push(&self, record: SpanRecord) {
        let mut ring = lock(&self.ring);
        if ring.buf.len() >= ring.cap {
            ring.buf.pop_front();
            ring.dropped += 1;
        }
        ring.buf.push_back(record);
    }
}

struct Ring {
    buf: VecDeque<SpanRecord>,
    dropped: u64,
    cap: usize,
}

/// Recover from poisoning: a panicking recording thread must not take
/// every later span (or the snapshot) down with it.
fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

// Per-thread state: one (lane, span stack) slot per live tracer. The
// vector is effectively length 1 or 2 in practice, so a linear scan
// beats any map.
thread_local! {
    static SLOTS: RefCell<Vec<Slot>> = const { RefCell::new(Vec::new()) };
}

struct Slot {
    tracer: u64,
    lane: Arc<Lane>,
    stack: Vec<SpanCtx>,
}

fn with_slot<R>(inner: &Arc<Inner>, f: impl FnOnce(&mut Slot) -> R) -> R {
    SLOTS.with(|slots| {
        let mut slots = slots.borrow_mut();
        let idx = match slots.iter().position(|s| s.tracer == inner.id) {
            Some(idx) => idx,
            None => {
                slots.push(Slot {
                    tracer: inner.id,
                    lane: inner.register_lane(),
                    stack: Vec::new(),
                });
                slots.len() - 1
            }
        };
        f(&mut slots[idx])
    })
}

struct GuardState {
    tracer: Arc<Inner>,
    ctx: SpanCtx,
    parent: u64,
    name: &'static str,
    start_us: u64,
    args: Vec<(&'static str, ArgValue)>,
}

/// RAII handle for an open span: dropping it closes and records the
/// span. Deliberately `!Send` — it sits on this thread's span stack;
/// use [`Tracer::span_detached`] for intervals that cross threads.
pub struct SpanGuard {
    state: Option<GuardState>,
    _not_send: PhantomData<*const ()>,
}

impl fmt::Debug for SpanGuard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SpanGuard")
            .field("ctx", &self.ctx())
            .finish()
    }
}

impl SpanGuard {
    fn inert() -> Self {
        SpanGuard {
            state: None,
            _not_send: PhantomData,
        }
    }

    /// The context children should parent to (zero when disabled).
    pub fn ctx(&self) -> SpanCtx {
        self.state.as_ref().map(|s| s.ctx).unwrap_or_default()
    }

    /// The trace this span belongs to (`0` when disabled/background).
    pub fn trace_id(&self) -> u64 {
        self.ctx().trace_id
    }

    /// Attach a key/value argument to the span (no-op when disabled).
    pub fn arg(&mut self, key: &'static str, value: impl Into<ArgValue>) {
        if let Some(state) = &mut self.state {
            state.args.push((key, value.into()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(state) = self.state.take() else {
            return;
        };
        let end_us = state.tracer.clock.now_us();
        let tracer = Arc::clone(&state.tracer);
        with_slot(&tracer, |slot| {
            // Guards normally drop LIFO; tolerate out-of-order drops by
            // removing our own entry wherever it sits.
            if let Some(pos) = slot
                .stack
                .iter()
                .rposition(|c| c.span_id == state.ctx.span_id)
            {
                slot.stack.remove(pos);
            }
            slot.lane.push(SpanRecord {
                trace_id: state.ctx.trace_id,
                span_id: state.ctx.span_id,
                parent: state.parent,
                name: state.name,
                start_us: state.start_us,
                end_us,
                lane: slot.lane.lane,
                args: state.args,
            });
        });
    }
}

/// A `Send` span that may start on one thread and finish on another.
/// It records when dropped (or via the explicit [`DetachedSpan::finish`])
/// into whichever thread's ring it ends on; it never participates in
/// implicit parenting.
pub struct DetachedSpan {
    state: Option<GuardState>,
}

impl fmt::Debug for DetachedSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DetachedSpan")
            .field("ctx", &self.ctx())
            .finish()
    }
}

impl DetachedSpan {
    /// The context children should parent to (zero when disabled).
    pub fn ctx(&self) -> SpanCtx {
        self.state.as_ref().map(|s| s.ctx).unwrap_or_default()
    }

    /// Attach a key/value argument (no-op when disabled).
    pub fn arg(&mut self, key: &'static str, value: impl Into<ArgValue>) {
        if let Some(state) = &mut self.state {
            state.args.push((key, value.into()));
        }
    }

    /// Close the span now. Equivalent to dropping it; spelled out so
    /// call sites show *where* the interval ends.
    pub fn finish(self) {}
}

impl Drop for DetachedSpan {
    fn drop(&mut self) {
        let Some(state) = self.state.take() else {
            return;
        };
        let end_us = state.tracer.clock.now_us();
        let tracer = Arc::clone(&state.tracer);
        tracer.push_here(SpanRecord {
            trace_id: state.ctx.trace_id,
            span_id: state.ctx.span_id,
            parent: state.parent,
            name: state.name,
            start_us: state.start_us,
            end_us,
            lane: 0, // stamped with the finishing thread's lane by push_here
            args: state.args,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64 as Counter;

    /// A deterministic clock: each read advances by 10 us.
    fn ticking() -> Tracer {
        let ticks = Arc::new(Counter::new(0));
        Tracer::builder()
            .with_clock(move || ticks.fetch_add(10, Ordering::Relaxed))
            .build()
    }

    #[test]
    fn disabled_tracer_is_inert() {
        let tracer = Tracer::disabled();
        assert!(!tracer.is_enabled());
        assert_eq!(tracer.new_trace_id(), 0);
        assert_eq!(tracer.now_us(), 0);
        let mut guard = tracer.span("noop");
        guard.arg("k", 1u64);
        assert_eq!(guard.ctx(), SpanCtx::default());
        drop(guard);
        tracer.span_detached("noop", SpanCtx::default()).finish();
        let snap = tracer.snapshot();
        assert!(snap.is_empty());
        assert_eq!(snap.dropped, 0);
    }

    #[test]
    fn default_is_disabled() {
        assert!(!Tracer::default().is_enabled());
    }

    #[test]
    fn nested_guards_parent_automatically() {
        let tracer = ticking();
        let trace = tracer.new_trace_id();
        let (outer_id, inner_id);
        {
            let outer = tracer.span_in(
                "outer",
                SpanCtx {
                    trace_id: trace,
                    span_id: 0,
                },
            );
            outer_id = outer.ctx().span_id;
            assert_eq!(tracer.current(), outer.ctx());
            {
                let inner = tracer.span("inner");
                inner_id = inner.ctx().span_id;
                assert_eq!(inner.trace_id(), trace, "trace id inherited");
            }
        }
        let snap = tracer.snapshot();
        assert_eq!(snap.len(), 2);
        let inner = snap.records.iter().find(|r| r.span_id == inner_id).unwrap();
        let outer = snap.records.iter().find(|r| r.span_id == outer_id).unwrap();
        assert_eq!(inner.parent, outer_id);
        assert_eq!(outer.parent, 0);
        assert_eq!(inner.trace_id, trace);
        // Injected clock: strictly increasing 10 us ticks, inner nested
        // inside outer.
        assert!(outer.start_us < inner.start_us);
        assert!(inner.end_us < outer.end_us);
        assert_eq!(inner.duration_us(), 10);
    }

    #[test]
    fn args_ride_on_the_record() {
        let tracer = ticking();
        {
            let mut span = tracer.span("work");
            span.arg("clips", 8usize);
            span.arg("endpoint", "classify");
        }
        let snap = tracer.snapshot();
        let record = &snap.records[0];
        assert_eq!(record.arg("clips").and_then(ArgValue::as_u64), Some(8));
        assert_eq!(
            record.arg("endpoint").and_then(ArgValue::as_str),
            Some("classify")
        );
        assert_eq!(record.arg("missing"), None);
    }

    #[test]
    fn rings_are_bounded_and_count_drops() {
        let ticks = Arc::new(Counter::new(0));
        let tracer = Tracer::builder()
            .ring_capacity(4)
            .with_clock(move || ticks.fetch_add(1, Ordering::Relaxed))
            .build();
        for _ in 0..10 {
            tracer.span("s");
        }
        let snap = tracer.snapshot();
        assert_eq!(snap.len(), 4);
        assert_eq!(snap.dropped, 6);
        // The survivors are the most recent records.
        let min_start = snap.records.iter().map(|r| r.start_us).min().unwrap();
        assert!(min_start >= 12, "oldest records rotated out");
    }

    #[test]
    fn detached_spans_cross_threads() {
        let tracer = ticking();
        let trace = tracer.new_trace_id();
        let root = SpanCtx {
            trace_id: trace,
            span_id: 7,
        };
        let span = tracer.span_detached("queue_wait", root);
        let ctx = span.ctx();
        std::thread::spawn(move || span.finish()).join().unwrap();
        let snap = tracer.snapshot();
        assert_eq!(snap.len(), 1);
        let record = &snap.records[0];
        assert_eq!(record.span_id, ctx.span_id);
        assert_eq!(record.parent, 7);
        assert_eq!(record.trace_id, trace);
        assert_eq!(record.name, "queue_wait");
    }

    #[test]
    fn record_raw_keeps_lane_and_ids() {
        let tracer = ticking();
        // Out-of-order inserts on purpose: the snapshot re-sorts.
        for (lane, seq, at) in [(3u32, 2u64, 50u64), (3, 1, 20), (1, 1, 20)] {
            tracer.record_raw(SpanRecord {
                trace_id: 0,
                span_id: seq,
                parent: 0,
                name: "event",
                start_us: at,
                end_us: at,
                lane,
                args: Vec::new(),
            });
        }
        let snap = tracer.snapshot();
        let order: Vec<(u64, u32, u64)> = snap
            .records
            .iter()
            .map(|r| (r.start_us, r.lane, r.span_id))
            .collect();
        assert_eq!(order, vec![(20, 1, 1), (20, 3, 1), (50, 3, 2)]);
    }

    #[test]
    fn record_span_allocates_an_id_and_lands_on_this_lane() {
        let tracer = ticking();
        let id = tracer.record_span("compute", 9, 4, 100, 250, vec![("batch", ArgValue::U64(2))]);
        assert_ne!(id, 0);
        let snap = tracer.snapshot();
        let record = &snap.records[0];
        assert_eq!(record.span_id, id);
        assert_eq!((record.trace_id, record.parent), (9, 4));
        assert_eq!((record.start_us, record.end_us), (100, 250));
        assert_ne!(record.lane, 0, "stamped with the recording lane");
    }

    #[test]
    fn snapshot_merges_lanes_from_many_threads() {
        let tracer = ticking();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let tracer = tracer.clone();
                scope.spawn(move || {
                    tracer.span("worker");
                });
            }
        });
        tracer.span("main");
        let snap = tracer.snapshot();
        assert_eq!(snap.len(), 5);
        assert_eq!(snap.lanes.len(), 5);
        // Sorted by (start_us, lane, span_id): start times are unique
        // under the ticking clock, so the order is by start.
        let mut starts: Vec<u64> = snap.records.iter().map(|r| r.start_us).collect();
        let sorted = {
            let mut s = starts.clone();
            s.sort_unstable();
            s
        };
        assert_eq!(starts, sorted);
        starts.dedup();
        assert_eq!(starts.len(), 5);
    }

    #[test]
    fn clear_drains_rings_and_drop_counters() {
        let ticks = Arc::new(Counter::new(0));
        let tracer = Tracer::builder()
            .ring_capacity(1)
            .with_clock(move || ticks.fetch_add(1, Ordering::Relaxed))
            .build();
        tracer.span("a");
        tracer.span("b");
        assert_eq!(tracer.snapshot().dropped, 1);
        tracer.clear();
        let snap = tracer.snapshot();
        assert!(snap.is_empty());
        assert_eq!(snap.dropped, 0);
    }

    #[test]
    fn chrome_export_round_trips_basic_shape() {
        let tracer = ticking();
        {
            let mut span = tracer.span_in(
                "classify",
                SpanCtx {
                    trace_id: 1,
                    span_id: 0,
                },
            );
            span.arg("note", "quote\" and \\slash");
        }
        let json = tracer.snapshot().to_chrome_json();
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.contains("\"name\":\"classify\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"note\":\"quote\\\" and \\\\slash\""));
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn tracer_and_types_are_send_sync_where_promised() {
        fn assert_send_sync<T: Send + Sync>() {}
        fn assert_send<T: Send>() {}
        assert_send_sync::<Tracer>();
        assert_send_sync::<SpanRecord>();
        assert_send_sync::<TraceSnapshot>();
        assert_send::<DetachedSpan>();
    }
}
