//! Chrome trace-event JSON rendering (the `chrome://tracing` /
//! Perfetto "JSON Array Format" with complete `"X"` events).
//!
//! Hand-rolled like every other serializer in this workspace: the
//! format is small (objects, strings, integers) and the test suite
//! parses it back with an equally from-scratch parser, so both
//! directions of the contract live in the repo.

use std::fmt::Write as _;

use crate::record::ArgValue;
use crate::snapshot::TraceSnapshot;

/// Render a snapshot as a complete Chrome trace JSON document.
pub fn to_chrome_json(snapshot: &TraceSnapshot) -> String {
    // ~160 bytes per event is typical; reserve to avoid rehash churn.
    let mut out = String::with_capacity(64 + snapshot.records.len() * 160);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    // Thread-name metadata first, so viewers label lanes before any
    // event references them.
    for lane in &snapshot.lanes {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":");
        let _ = write!(out, "{}", lane.lane);
        out.push_str(",\"args\":{\"name\":");
        push_json_string(&mut out, &lane.name);
        out.push_str("}}");
    }
    for record in &snapshot.records {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("{\"name\":");
        push_json_string(&mut out, record.name);
        out.push_str(",\"cat\":\"snappix\",\"ph\":\"X\",\"ts\":");
        let _ = write!(out, "{}", record.start_us);
        out.push_str(",\"dur\":");
        let _ = write!(out, "{}", record.duration_us());
        out.push_str(",\"pid\":1,\"tid\":");
        let _ = write!(out, "{}", record.lane);
        let _ = write!(
            out,
            ",\"args\":{{\"trace_id\":{},\"span_id\":{},\"parent\":{}",
            record.trace_id, record.span_id, record.parent
        );
        for (key, value) in &record.args {
            out.push(',');
            push_json_string(&mut out, key);
            out.push(':');
            match value {
                ArgValue::U64(v) => {
                    let _ = write!(out, "{v}");
                }
                ArgValue::Str(s) => push_json_string(&mut out, s),
            }
        }
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

/// Append `s` as a JSON string literal, escaping quotes, backslashes,
/// and control characters per RFC 8259.
fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_strings_escape_quotes_backslashes_and_controls() {
        let mut out = String::new();
        push_json_string(&mut out, "a\"b\\c\nd\re\tf\u{1}g");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\re\\tf\\u0001g\"");
    }

    #[test]
    fn empty_snapshot_renders_an_empty_event_array() {
        let json = to_chrome_json(&TraceSnapshot::default());
        assert_eq!(json, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}");
    }
}
