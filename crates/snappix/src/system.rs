//! Deprecated compatibility shim: the pre-`Pipeline` end-to-end API.
//!
//! `SnapPixSystem` was the original public entry point — one clip at a
//! time, a fresh autograd session per call. It now delegates to
//! [`Pipeline`](crate::Pipeline) over the
//! [`HardwareSensor`](snappix_sensor::HardwareSensor) backend and will be
//! removed one release after the redesign; see the migration note in
//! CHANGES.md.

use crate::{Error, Pipeline};
use snappix_models::{ActionModel, SnapPixAr};
use snappix_sensor::{CaptureStats, CeSensor, HardwareSensor, ReadoutConfig};
use snappix_tensor::Tensor;

/// Former name of the unified [`Error`]; kept so old `Result<_,
/// SystemError>` signatures keep compiling during the migration.
#[deprecated(since = "0.1.0", note = "use `snappix::Error`")]
pub type SystemError = Error;

/// The original one-clip-at-a-time deployment pipeline, now a thin shim
/// over [`Pipeline`]`<`[`HardwareSensor`]`>`.
///
/// Migration (see CHANGES.md):
///
/// ```text
/// SnapPixSystem::new(model, readout)   ->  Pipeline::builder(model)
///                                              .with_hardware_sensor(readout)?.build()?
/// system.classify(clip)                ->  pipeline.classify(clip)
/// system.logits(clip)                  ->  pipeline.infer_clip(clip)?.logits
/// system.sense(clip)                   ->  pipeline.sense(clip)
/// system.last_capture_stats()          ->  pipeline.backend().stats()
/// ```
#[deprecated(
    since = "0.1.0",
    note = "use `Pipeline::builder(model).with_hardware_sensor(readout)` — \
            batched, session-reusing, and generic over the `Sense` backend"
)]
pub struct SnapPixSystem {
    inner: Pipeline<HardwareSensor>,
}

#[allow(deprecated)]
impl std::fmt::Debug for SnapPixSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapPixSystem")
            .field("sensor", &(self.sensor().height(), self.sensor().width()))
            .field("model", &self.inner.model().name().to_string())
            .finish()
    }
}

#[allow(deprecated)]
impl SnapPixSystem {
    /// Assembles a system around a (typically already trained) model; the
    /// sensor geometry and mask are taken from the model, and the
    /// readout's `full_scale` is overridden to the mask's slot count.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Sensor`] when the model's geometry cannot form a
    /// sensor.
    pub fn new(model: SnapPixAr, readout: ReadoutConfig) -> Result<Self, Error> {
        // The legacy contract: `sense` always returned the
        // exposure-normalized coded image, even for models whose
        // `normalize_by_exposure` ablation flag is off (the modern
        // `with_hardware_sensor` follows the flag instead, and `build`
        // rejects the mismatch — hence `build_unchecked`).
        let cfg = model.encoder().config();
        let backend = HardwareSensor::new(cfg.height, cfg.width, model.mask().clone())?
            .with_readout(ReadoutConfig {
                full_scale: model.mask().num_slots() as f32,
                ..readout
            })
            .with_normalization(true);
        let inner = Pipeline::builder(model)
            .with_backend(backend)
            .build_unchecked()?;
        Ok(SnapPixSystem { inner })
    }

    /// The vision model.
    pub fn model(&self) -> &SnapPixAr {
        self.inner.model()
    }

    /// The simulated sensor.
    pub fn sensor(&self) -> &CeSensor {
        self.inner.backend().sensor()
    }

    /// Statistics of the most recent capture (for energy accounting).
    pub fn last_capture_stats(&self) -> CaptureStats {
        self.inner.backend().stats()
    }

    /// Captures one `[t, h, w]` clip through the hardware simulation and
    /// returns the digitized, exposure-normalized coded image.
    ///
    /// # Errors
    ///
    /// Fails when the clip does not match the sensor.
    pub fn sense(&mut self, video: &Tensor) -> Result<Tensor, Error> {
        self.inner.sense(video)
    }

    /// Full pipeline: sense the clip, classify the coded image, return
    /// the predicted class index.
    ///
    /// # Errors
    ///
    /// Fails when the clip does not match the sensor or the model.
    pub fn classify(&mut self, video: &Tensor) -> Result<usize, Error> {
        self.inner.classify(video)
    }

    /// Full pipeline returning raw class logits `[1, classes]`.
    ///
    /// # Errors
    ///
    /// Fails when the clip does not match the sensor or the model.
    pub fn logits(&mut self, video: &Tensor) -> Result<Tensor, Error> {
        let classes = self.inner.num_classes();
        let prediction = self.inner.infer_clip(video)?;
        Ok(prediction.logits.reshape(&[1, classes])?)
    }

    /// Unwraps the shim into the modern engine, keeping the assembled
    /// model and hardware backend.
    pub fn into_pipeline(self) -> Pipeline<HardwareSensor> {
        self.inner
    }
}

#[allow(deprecated)]
impl From<SnapPixSystem> for Pipeline<HardwareSensor> {
    fn from(system: SnapPixSystem) -> Self {
        system.into_pipeline()
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use snappix_ce::patterns;
    use snappix_models::VitConfig;
    use snappix_video::{ssv2_like, Dataset};

    fn system() -> SnapPixSystem {
        let mask = patterns::long_exposure(8, (8, 8)).unwrap();
        let model = SnapPixAr::new(VitConfig::snappix_s(16, 16, 5), mask).unwrap();
        SnapPixSystem::new(model, ReadoutConfig::noiseless(8, 8.0)).unwrap()
    }

    #[test]
    fn shim_preserves_the_legacy_surface() {
        let mut sys = system();
        let video = Tensor::full(&[8, 16, 16], 0.5);
        let coded = sys.sense(&video).unwrap();
        assert_eq!(coded.shape(), &[16, 16]);
        // Long exposure of constant 0.5, normalized by 8 slots -> ~0.5
        // (up to ADC quantization).
        assert!(coded.approx_eq(&Tensor::full(&[16, 16], 0.5), 0.02));

        let data = Dataset::new(ssv2_like(8, 16, 16), 1);
        let label = sys.classify(data.sample(0).video.frames()).unwrap();
        assert!(label < 5);
        let logits = sys.logits(data.sample(0).video.frames()).unwrap();
        assert_eq!(logits.shape(), &[1, 5]);
        assert!(sys.last_capture_stats().pixels_read > 0);

        assert!(sys.classify(&Tensor::zeros(&[4, 16, 16])).is_err());
        assert!(sys.sense(&Tensor::zeros(&[8, 8, 8])).is_err());
        assert!(format!("{sys:?}").contains("SnapPixSystem"));
        assert_eq!(sys.sensor().height(), 16);
        assert_eq!(sys.model().mask().num_slots(), 8);
    }

    #[test]
    fn shim_normalizes_sense_even_for_unnormalized_models() {
        // Regression: the legacy `sense` normalized unconditionally; the
        // shim must keep doing so when `normalize_by_exposure` is off.
        let mask = patterns::long_exposure(8, (8, 8)).unwrap();
        let mut model = SnapPixAr::new(VitConfig::snappix_s(16, 16, 5), mask).unwrap();
        model.normalize_by_exposure = false;
        let mut sys = SnapPixSystem::new(model, ReadoutConfig::noiseless(12, 8.0)).unwrap();
        let coded = sys.sense(&Tensor::full(&[8, 16, 16], 0.5)).unwrap();
        // Normalized long exposure of constant 0.5 -> ~0.5 (not ~4.0).
        assert!(coded.approx_eq(&Tensor::full(&[16, 16], 0.5), 0.02));
    }

    #[test]
    fn shim_delegates_to_the_pipeline_bit_for_bit() {
        let mut sys = system();
        let video = Tensor::full(&[8, 16, 16], 0.3);
        let legacy = sys.logits(&video).unwrap();
        let mut pipeline: crate::Pipeline<_> = sys.into();
        let modern = pipeline.infer_clip(&video).unwrap();
        assert!(legacy.reshape(&[5]).unwrap().approx_eq(&modern.logits, 0.0));
    }
}
