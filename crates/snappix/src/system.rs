//! The end-to-end SnapPix pipeline: sensor hardware simulation plus the
//! co-designed vision model.

use snappix_ce::normalize_coded;
use snappix_models::{ActionModel, SnapPixAr};
use snappix_nn::Session;
use snappix_sensor::{CaptureStats, CeSensor, Readout, ReadoutConfig};
use snappix_tensor::Tensor;
use std::fmt;

/// Error type for the end-to-end system.
#[derive(Debug)]
pub enum SystemError {
    /// The sensor simulation failed.
    Sensor(snappix_sensor::SensorError),
    /// The vision model failed.
    Model(snappix_models::ModelError),
    /// A tensor operation failed.
    Tensor(snappix_tensor::TensorError),
}

impl fmt::Display for SystemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SystemError::Sensor(e) => write!(f, "sensor error: {e}"),
            SystemError::Model(e) => write!(f, "model error: {e}"),
            SystemError::Tensor(e) => write!(f, "tensor error: {e}"),
        }
    }
}

impl std::error::Error for SystemError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SystemError::Sensor(e) => Some(e),
            SystemError::Model(e) => Some(e),
            SystemError::Tensor(e) => Some(e),
        }
    }
}

impl From<snappix_sensor::SensorError> for SystemError {
    fn from(e: snappix_sensor::SensorError) -> Self {
        SystemError::Sensor(e)
    }
}

impl From<snappix_models::ModelError> for SystemError {
    fn from(e: snappix_models::ModelError) -> Self {
        SystemError::Model(e)
    }
}

impl From<snappix_tensor::TensorError> for SystemError {
    fn from(e: snappix_tensor::TensorError) -> Self {
        SystemError::Tensor(e)
    }
}

/// The deployed SnapPix pipeline: incident light goes through the
/// simulated CE sensor (charge-domain pixel model, shift-register pattern
/// streaming, noisy ADC) and the resulting coded image drives the
/// co-designed ViT.
///
/// During *training* the algorithmic encoder ([`snappix_ce::encode`]) is
/// used for speed; this type is the *deployment* path that exercises the
/// hardware model end to end. The workspace integration tests assert both
/// paths agree.
pub struct SnapPixSystem {
    model: SnapPixAr,
    sensor: CeSensor,
    readout: Readout,
}

impl fmt::Debug for SnapPixSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SnapPixSystem")
            .field("sensor", &(self.sensor.height(), self.sensor.width()))
            .field("model", &self.model.name().to_string())
            .finish()
    }
}

impl SnapPixSystem {
    /// Assembles a system around a (typically already trained) model; the
    /// sensor geometry and mask are taken from the model.
    ///
    /// The readout's `full_scale` is overridden to the mask's slot count
    /// so the ADC range matches the worst-case accumulated charge.
    ///
    /// # Errors
    ///
    /// Returns [`SystemError::Sensor`] when the model's geometry cannot
    /// form a sensor.
    pub fn new(model: SnapPixAr, readout: ReadoutConfig) -> Result<Self, SystemError> {
        let cfg = model.encoder().config();
        let sensor = CeSensor::new(cfg.height, cfg.width, model.mask().clone())?;
        let readout = Readout::new(ReadoutConfig {
            full_scale: model.mask().num_slots() as f32,
            ..readout
        });
        Ok(SnapPixSystem {
            model,
            sensor,
            readout,
        })
    }

    /// The vision model.
    pub fn model(&self) -> &SnapPixAr {
        &self.model
    }

    /// The simulated sensor.
    pub fn sensor(&self) -> &CeSensor {
        &self.sensor
    }

    /// Statistics of the most recent capture (for energy accounting).
    pub fn last_capture_stats(&self) -> CaptureStats {
        self.sensor.stats()
    }

    /// Captures one `[t, h, w]` clip through the hardware simulation and
    /// returns the digitized, exposure-normalized coded image the node
    /// would transmit.
    ///
    /// # Errors
    ///
    /// Fails when the clip does not match the sensor.
    pub fn sense(&mut self, video: &Tensor) -> Result<Tensor, SystemError> {
        let digital = self.sensor.capture_digital(video, &mut self.readout)?;
        Ok(normalize_coded(&digital, self.model.mask()))
    }

    /// Full pipeline: sense the clip, classify the coded image, return
    /// the predicted class index.
    ///
    /// # Errors
    ///
    /// Fails when the clip does not match the sensor or the model.
    pub fn classify(&mut self, video: &Tensor) -> Result<usize, SystemError> {
        let logits = self.logits(video)?;
        Ok(logits.argmax_axis(1).map_err(SystemError::from)?[0])
    }

    /// Full pipeline returning raw class logits `[1, classes]`.
    ///
    /// # Errors
    ///
    /// Fails when the clip does not match the sensor or the model.
    pub fn logits(&mut self, video: &Tensor) -> Result<Tensor, SystemError> {
        let coded = self.sense(video)?;
        let batch = coded.reshape(&[1, coded.shape()[0], coded.shape()[1]])?;
        let mut sess = Session::inference(self.model.store());
        let logits = self.model.build_logits_from_coded(&mut sess, &batch)?;
        Ok(sess.graph.value(logits).clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snappix_ce::patterns;
    use snappix_models::VitConfig;
    use snappix_video::{ssv2_like, Dataset};

    fn system() -> SnapPixSystem {
        let mask = patterns::long_exposure(8, (8, 8)).unwrap();
        let model = SnapPixAr::new(VitConfig::snappix_s(16, 16, 5), mask).unwrap();
        SnapPixSystem::new(model, ReadoutConfig::noiseless(8, 8.0)).unwrap()
    }

    #[test]
    fn sense_produces_normalized_coded_image() {
        let mut sys = system();
        let video = Tensor::full(&[8, 16, 16], 0.5);
        let coded = sys.sense(&video).unwrap();
        assert_eq!(coded.shape(), &[16, 16]);
        // Long exposure of constant 0.5, normalized by 8 slots -> ~0.5
        // (up to ADC quantization).
        assert!(coded.approx_eq(&Tensor::full(&[16, 16], 0.5), 0.02));
    }

    #[test]
    fn classify_returns_valid_class() {
        let mut sys = system();
        let data = Dataset::new(ssv2_like(8, 16, 16), 1);
        let label = sys.classify(data.sample(0).video.frames()).unwrap();
        assert!(label < 5);
        let logits = sys.logits(data.sample(0).video.frames()).unwrap();
        assert_eq!(logits.shape(), &[1, 5]);
        assert!(sys.last_capture_stats().pixels_read > 0);
    }

    #[test]
    fn wrong_clip_geometry_errors() {
        let mut sys = system();
        assert!(sys.classify(&Tensor::zeros(&[4, 16, 16])).is_err());
        assert!(sys.sense(&Tensor::zeros(&[8, 8, 8])).is_err());
    }

    #[test]
    fn debug_and_accessors() {
        let sys = system();
        assert!(format!("{sys:?}").contains("SnapPixSystem"));
        assert_eq!(sys.sensor().height(), 16);
        assert_eq!(sys.model().mask().num_slots(), 8);
    }
}
