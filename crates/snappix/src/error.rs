//! The workspace-unified error type of the umbrella crate.

use std::fmt;

/// Unified error for the umbrella API: every sub-crate error converts
/// into it via `From`, so `?` works across the whole stack and callers
/// match one type.
///
/// The enum is `#[non_exhaustive]`: future sub-systems can add variants
/// without a breaking release, so downstream matches need a `_` arm.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// A tensor operation failed.
    Tensor(snappix_tensor::TensorError),
    /// An autograd operation failed.
    Autograd(snappix_autograd::AutogradError),
    /// A neural-network layer or optimizer failed.
    Nn(snappix_nn::NnError),
    /// A coded-exposure component (codec, mask, mask learner) failed.
    Ce(snappix_ce::CeError),
    /// The sensor hardware simulation failed.
    Sensor(snappix_sensor::SensorError),
    /// The vision model failed.
    Model(snappix_models::ModelError),
    /// The pipeline itself was misused or misassembled (backend/model
    /// mask mismatch, malformed clip batch, ...).
    Pipeline {
        /// Human-readable description of the problem.
        context: String,
    },
    /// The serving layer failed (admission rejected, deadline expired,
    /// batch inference error, ...).
    ///
    /// Boxed rather than a concrete type because the serving crate
    /// (`snappix-serve`) sits *above* this umbrella crate in the
    /// dependency graph; it provides `From<ServeError> for Error`
    /// through this variant, and the original error stays reachable via
    /// [`std::error::Error::source`] / downcasting.
    Serve(Box<dyn std::error::Error + Send + Sync>),
    /// The streaming layer failed (frame source, window assembly, or a
    /// per-stream session).
    ///
    /// Boxed for the same reason as [`Serve`](Self::Serve): the
    /// streaming crate (`snappix-stream`) sits above this umbrella crate
    /// and provides `From<StreamError> for Error` through this variant;
    /// the original error stays reachable via
    /// [`std::error::Error::source`] / downcasting.
    Stream(Box<dyn std::error::Error + Send + Sync>),
    /// The network front-end failed (socket bind, gateway thread spawn,
    /// or misconfiguration).
    ///
    /// Boxed for the same reason as [`Serve`](Self::Serve): the gateway
    /// crate (`snappix-gateway`) sits above this umbrella crate and
    /// provides `From<GatewayError> for Error` through this variant; the
    /// original error stays reachable via
    /// [`std::error::Error::source`] / downcasting.
    Gateway(Box<dyn std::error::Error + Send + Sync>),
    /// The fleet simulator failed (node misconfiguration, a driver
    /// thread died, or a node's serving path errored).
    ///
    /// Boxed for the same reason as [`Serve`](Self::Serve): the fleet
    /// crate (`snappix-fleet`) sits above this umbrella crate and
    /// provides `From<FleetError> for Error` through this variant; the
    /// original error stays reachable via
    /// [`std::error::Error::source`] / downcasting.
    Fleet(Box<dyn std::error::Error + Send + Sync>),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Tensor(e) => write!(f, "tensor error: {e}"),
            Error::Autograd(e) => write!(f, "autograd error: {e}"),
            Error::Nn(e) => write!(f, "nn error: {e}"),
            Error::Ce(e) => write!(f, "coded-exposure error: {e}"),
            Error::Sensor(e) => write!(f, "sensor error: {e}"),
            Error::Model(e) => write!(f, "model error: {e}"),
            Error::Pipeline { context } => write!(f, "pipeline error: {context}"),
            Error::Serve(e) => write!(f, "serve error: {e}"),
            Error::Stream(e) => write!(f, "stream error: {e}"),
            Error::Gateway(e) => write!(f, "gateway error: {e}"),
            Error::Fleet(e) => write!(f, "fleet error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Tensor(e) => Some(e),
            Error::Autograd(e) => Some(e),
            Error::Nn(e) => Some(e),
            Error::Ce(e) => Some(e),
            Error::Sensor(e) => Some(e),
            Error::Model(e) => Some(e),
            Error::Pipeline { .. } => None,
            Error::Serve(e) => Some(e.as_ref()),
            Error::Stream(e) => Some(e.as_ref()),
            Error::Gateway(e) => Some(e.as_ref()),
            Error::Fleet(e) => Some(e.as_ref()),
        }
    }
}

impl From<snappix_tensor::TensorError> for Error {
    fn from(e: snappix_tensor::TensorError) -> Self {
        Error::Tensor(e)
    }
}

impl From<snappix_autograd::AutogradError> for Error {
    fn from(e: snappix_autograd::AutogradError) -> Self {
        Error::Autograd(e)
    }
}

impl From<snappix_nn::NnError> for Error {
    fn from(e: snappix_nn::NnError) -> Self {
        Error::Nn(e)
    }
}

impl From<snappix_ce::CeError> for Error {
    fn from(e: snappix_ce::CeError) -> Self {
        Error::Ce(e)
    }
}

impl From<snappix_sensor::SensorError> for Error {
    fn from(e: snappix_sensor::SensorError) -> Self {
        Error::Sensor(e)
    }
}

impl From<snappix_models::ModelError> for Error {
    fn from(e: snappix_models::ModelError) -> Self {
        Error::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_subcrate_error_converts_and_chains() {
        let cases: Vec<Error> = vec![
            snappix_tensor::TensorError::InvalidArgument {
                context: "t".into(),
            }
            .into(),
            snappix_autograd::AutogradError::InvalidVar { index: 0, nodes: 0 }.into(),
            snappix_nn::NnError::Config {
                context: "n".into(),
            }
            .into(),
            snappix_ce::CeError::InvalidMask {
                context: "c".into(),
            }
            .into(),
            snappix_sensor::SensorError::Geometry {
                context: "s".into(),
            }
            .into(),
            snappix_models::ModelError::Input {
                context: "m".into(),
            }
            .into(),
        ];
        for e in cases {
            assert!(!e.to_string().is_empty());
            assert!(std::error::Error::source(&e).is_some(), "{e} has a source");
        }
        let p = Error::Pipeline {
            context: "mask mismatch".into(),
        };
        assert!(p.to_string().contains("mask mismatch"));
        assert!(std::error::Error::source(&p).is_none());

        // The serving layer converts through the boxed variant, keeping
        // the original error on the source chain.
        let s = Error::Serve(Box::new(snappix_tensor::TensorError::InvalidArgument {
            context: "queue".into(),
        }));
        assert!(s.to_string().starts_with("serve error:"));
        assert!(std::error::Error::source(&s).is_some());

        // The streaming layer converts the same way.
        let st = Error::Stream(Box::new(snappix_tensor::TensorError::InvalidArgument {
            context: "ring".into(),
        }));
        assert!(st.to_string().starts_with("stream error:"));
        assert!(std::error::Error::source(&st).is_some());

        // And so does the network front-end.
        let g = Error::Gateway(Box::new(snappix_tensor::TensorError::InvalidArgument {
            context: "bind".into(),
        }));
        assert!(g.to_string().starts_with("gateway error:"));
        assert!(std::error::Error::source(&g).is_some());

        // And the fleet simulator.
        let fl = Error::Fleet(Box::new(snappix_tensor::TensorError::InvalidArgument {
            context: "ladder".into(),
        }));
        assert!(fl.to_string().starts_with("fleet error:"));
        assert!(std::error::Error::source(&fl).is_some());
    }
}
