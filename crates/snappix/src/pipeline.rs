//! The throughput-first inference engine: batched clips in, logits and
//! labels per clip out.
//!
//! [`Pipeline`] replaced the one-clip-at-a-time `SnapPixSystem` (retired
//! after its deprecation release): it owns
//! a persistent [`SessionPool`] so the autograd graph and parameter
//! bindings are reused across calls instead of being reallocated per
//! clip, it accepts `[batch, t, h, w]` clip batches so the whole batch
//! shares one forward pass, and it is generic over the [`Sense`] backend
//! so the training-time algorithmic encoder and the deployment-time
//! hardware simulation run through identical code.

use crate::Error;
use snappix_ce::{AlgorithmicEncoder, Sense};
use snappix_models::{ActionModel, SnapPixAr};
use snappix_nn::{ArtifactReader, SessionPool};
use snappix_sensor::{HardwareSensor, ReadoutConfig};
use snappix_tensor::{parallel, Tensor};
use snappix_trace::Tracer;
use std::fmt;
use std::path::Path;
use std::time::{Duration, Instant};

/// Runs `f` under the pipeline's worker-count override, when one is set.
fn with_pool<R>(threads: Option<usize>, f: impl FnOnce() -> R) -> R {
    match threads {
        Some(n) => parallel::with_threads(n, f),
        None => f(),
    }
}

/// Cumulative timing for one pipeline stage: call count, total wall
/// time, and the slowest single call.
///
/// Stage timing is *always* accumulated — two monotonic clock reads per
/// stage per batch, noise next to a millisecond-scale forward pass — so
/// per-stage aggregates reach `ServerStats` and `/metrics` even with
/// span tracing off.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageProfile {
    /// Times the stage ran.
    pub calls: u64,
    /// Total wall time across all calls.
    pub total: Duration,
    /// The slowest single call.
    pub max: Duration,
}

impl StageProfile {
    fn record(&mut self, elapsed: Duration) {
        self.calls += 1;
        self.total += elapsed;
        if elapsed > self.max {
            self.max = elapsed;
        }
    }

    /// Mean wall time per call (zero before the first call).
    pub fn mean(&self) -> Duration {
        if self.calls == 0 {
            Duration::ZERO
        } else {
            self.total / u32::try_from(self.calls).unwrap_or(u32::MAX)
        }
    }

    /// Fold `other`'s calls into this profile.
    pub fn merge(&mut self, other: &StageProfile) {
        self.calls += other.calls;
        self.total += other.total;
        if other.max > self.max {
            self.max = other.max;
        }
    }
}

/// Where a pipeline's wall time goes, by stage: `sense` (the coding
/// backend), `forward` (the model pass), `readout` (argmax over
/// logits).
///
/// Read it with [`Pipeline::profile`], or drain deltas with
/// [`Pipeline::take_profile`] — the serving layer does the latter after
/// every batch so `ServerStats` aggregates stage time across worker
/// replicas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PipelineProfile {
    /// The sensing/coding stage (`Sense::sense_batch` and `sense`).
    pub sense: StageProfile,
    /// The batched model forward pass.
    pub forward: StageProfile,
    /// Label extraction (argmax) over the logits.
    pub readout: StageProfile,
    /// Batched forward passes completed.
    pub batches: u64,
    /// Clips classified across those batches.
    pub clips: u64,
}

impl PipelineProfile {
    /// Fold `other` into this profile (stage by stage plus the batch
    /// and clip counters).
    pub fn merge(&mut self, other: &PipelineProfile) {
        self.sense.merge(&other.sense);
        self.forward.merge(&other.forward);
        self.readout.merge(&other.readout);
        self.batches += other.batches;
        self.clips += other.clips;
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self == &PipelineProfile::default()
    }
}

impl fmt::Display for PipelineProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} clips / {} batches | sense {:?} mean (max {:?}) | forward {:?} mean (max {:?}) | readout {:?} mean (max {:?})",
            self.clips,
            self.batches,
            self.sense.mean(),
            self.sense.max,
            self.forward.mean(),
            self.forward.max,
            self.readout.mean(),
            self.readout.max,
        )
    }
}

/// Result of classifying one clip: the raw class logits and the winning
/// label.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// Predicted class index.
    pub label: usize,
    /// Raw class logits `[classes]`.
    pub logits: Tensor,
}

/// Result of one batched inference: per-clip logits and labels, in the
/// order the clips were passed (or submitted).
#[derive(Debug, Clone, PartialEq)]
pub struct Inference {
    /// Raw class logits `[batch, classes]`.
    pub logits: Tensor,
    /// Predicted class index per clip.
    pub labels: Vec<usize>,
}

impl Inference {
    /// An inference over zero clips: `[0, num_classes]` logits, no
    /// labels. This is what [`Pipeline::flush`] returns on an empty
    /// queue and [`Pipeline::infer`] returns for a `[0, t, h, w]` batch.
    pub fn empty(num_classes: usize) -> Self {
        Inference {
            logits: Tensor::zeros(&[0, num_classes]),
            labels: Vec::new(),
        }
    }

    /// Number of clips in this inference.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Returns `true` when no clips were inferred (e.g. flushing an
    /// empty queue).
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Extracts clip `i` as a standalone [`Prediction`].
    ///
    /// # Errors
    ///
    /// Fails when `i` is out of range.
    pub fn prediction(&self, i: usize) -> Result<Prediction, Error> {
        let logits = self.logits.index_axis(0, i)?;
        Ok(Prediction {
            label: self.labels[i],
            logits,
        })
    }

    /// Iterates over the clips as standalone [`Prediction`]s, in batch
    /// order — the loop-friendly face of [`prediction`](Self::prediction)
    /// (no hand-written indexing, no per-item `Result`).
    ///
    /// Each item clones its logits row out of the batched tensor, the
    /// same cost `prediction(i)` pays.
    pub fn predictions(&self) -> Predictions<'_> {
        Predictions {
            inference: self,
            next: 0,
        }
    }
}

/// Borrowed iterator over an [`Inference`]'s per-clip [`Prediction`]s.
///
/// Created by [`Inference::predictions`] (or `&inference` in a `for`
/// loop).
#[derive(Debug, Clone)]
pub struct Predictions<'a> {
    inference: &'a Inference,
    next: usize,
}

impl Iterator for Predictions<'_> {
    type Item = Prediction;

    fn next(&mut self) -> Option<Prediction> {
        if self.next >= self.inference.len() {
            return None;
        }
        let i = self.next;
        self.next += 1;
        // In range by the check above, so extraction cannot fail.
        Some(self.inference.prediction(i).expect("index in range"))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.inference.len() - self.next;
        (left, Some(left))
    }
}

impl ExactSizeIterator for Predictions<'_> {}

impl<'a> IntoIterator for &'a Inference {
    type Item = Prediction;
    type IntoIter = Predictions<'a>;

    fn into_iter(self) -> Predictions<'a> {
        self.predictions()
    }
}

/// Owning iterator over an [`Inference`]'s per-clip [`Prediction`]s.
///
/// Created by iterating an [`Inference`] by value.
#[derive(Debug, Clone)]
pub struct IntoPredictions {
    inference: Inference,
    next: usize,
}

impl Iterator for IntoPredictions {
    type Item = Prediction;

    fn next(&mut self) -> Option<Prediction> {
        if self.next >= self.inference.len() {
            return None;
        }
        let i = self.next;
        self.next += 1;
        Some(self.inference.prediction(i).expect("index in range"))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.inference.len() - self.next;
        (left, Some(left))
    }
}

impl ExactSizeIterator for IntoPredictions {}

impl IntoIterator for Inference {
    type Item = Prediction;
    type IntoIter = IntoPredictions;

    fn into_iter(self) -> IntoPredictions {
        IntoPredictions {
            inference: self,
            next: 0,
        }
    }
}

/// Staged construction of a [`Pipeline`], following the workspace's
/// builder-style `with_*` idiom (each method returns `self` with one
/// knob changed; [`PipelineBuilder::build`] validates the assembly).
///
/// Created by [`Pipeline::builder`], which starts from the
/// training-time [`AlgorithmicEncoder`] backend; swap in the hardware
/// simulation with [`with_hardware_sensor`](Self::with_hardware_sensor)
/// or any custom [`Sense`] implementation with
/// [`with_backend`](Self::with_backend).
///
/// When the backend is `Clone` the builder is too, and
/// [`build_replicas`](Self::build_replicas) stamps out identical
/// pipeline replicas — the construction path serving layers use to give
/// every worker thread its own engine over the same weights.
#[derive(Debug, Clone)]
pub struct PipelineBuilder<S: Sense = AlgorithmicEncoder> {
    model: SnapPixAr,
    backend: S,
    max_pending: usize,
    threads: Option<usize>,
    tracer: Tracer,
}

impl<S: Sense> PipelineBuilder<S> {
    /// Replaces the sensing backend with any [`Sense`] implementation.
    ///
    /// The backend must run the same exposure mask as the model and
    /// agree with the model's `normalize_by_exposure` flag (reported via
    /// [`Sense::normalizes`]); [`build`](Self::build) enforces both.
    /// [`Pipeline::builder`] and
    /// [`with_hardware_sensor`](Self::with_hardware_sensor) sync the
    /// normalization flag automatically; when constructing an
    /// [`AlgorithmicEncoder`] or [`HardwareSensor`] by hand, pass
    /// `.with_normalization(model.normalize_by_exposure)`.
    #[must_use]
    pub fn with_backend<S2: Sense>(self, backend: S2) -> PipelineBuilder<S2> {
        PipelineBuilder {
            model: self.model,
            backend,
            max_pending: self.max_pending,
            threads: self.threads,
            tracer: self.tracer,
        }
    }

    /// Switches to the deployment path: clips pass through the simulated
    /// charge-domain sensor and a readout chain built from `readout`.
    ///
    /// The sensor geometry and mask are taken from the model, and the
    /// readout's `full_scale` is overridden to the mask's slot count so
    /// the ADC range matches the worst-case accumulated charge (the same
    /// convention the retired `SnapPixSystem::new` applied).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Sensor`] when the model's geometry cannot form a
    /// sensor.
    pub fn with_hardware_sensor(
        self,
        readout: ReadoutConfig,
    ) -> Result<PipelineBuilder<HardwareSensor>, Error> {
        let cfg = self.model.encoder().config();
        let backend = HardwareSensor::new(cfg.height, cfg.width, self.model.mask().clone())?
            .with_readout(ReadoutConfig {
                full_scale: self.model.mask().num_slots() as f32,
                ..readout
            })
            .with_normalization(self.model.normalize_by_exposure);
        Ok(PipelineBuilder {
            model: self.model,
            backend,
            max_pending: self.max_pending,
            threads: self.threads,
            tracer: self.tracer,
        })
    }

    /// Sets the micro-batch size of the [`Pipeline::submit`] queue: once
    /// this many clips are pending, `submit` flushes them through one
    /// batched forward pass. Defaults to 8.
    #[must_use]
    pub fn with_max_pending(mut self, max_pending: usize) -> Self {
        self.max_pending = max_pending.max(1);
        self
    }

    /// Attaches a span recorder: the pipeline emits `sense`/`forward`/
    /// `readout` spans into it on every inference, auto-parented under
    /// whatever span the caller has open (the serving layer's `batch`
    /// span, say). Defaults to [`Tracer::disabled`], which records
    /// nothing and costs nothing on the hot path. Tracing never changes
    /// results — outputs are bit-for-bit identical on and off.
    #[must_use]
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Pins the worker count this pipeline's sensing and inference run
    /// with (clamped to at least 1), scoped per call through
    /// [`snappix_tensor::parallel::with_threads`].
    ///
    /// By default the pipeline inherits the ambient setting — the
    /// `SNAPPIX_THREADS` environment variable, else the machine's
    /// available parallelism — so serving callers only need this knob to
    /// isolate pipelines from each other (e.g. one serial pipeline per
    /// core versus one pipeline fanning out across all cores).
    /// `with_threads(1)` makes every kernel take its deterministic
    /// serial reference path.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Loads the model's weights from the sealed `.spx` artifact at
    /// `path`.
    ///
    /// The artifact's payload is read into memory once and every
    /// parameter becomes a zero-copy window into that one shared
    /// buffer, so [`build_replicas`](Self::build_replicas) stamps out
    /// replicas that all reference the same weight storage instead of n
    /// deep copies. To share one already-open artifact across several
    /// builders (e.g. a model registry), use
    /// [`with_artifact_reader`](Self::with_artifact_reader).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Nn`] when the artifact cannot be opened or
    /// validated, or when its tensors do not match the model's
    /// parameters (unknown names, shape mismatches).
    pub fn with_artifact(self, path: impl AsRef<Path>) -> Result<Self, Error> {
        let reader = ArtifactReader::open(path)?;
        self.with_artifact_reader(&reader)
    }

    /// Loads the model's weights from an already-open
    /// [`ArtifactReader`], sharing its payload buffer.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Nn`] when the artifact's tensors do not match
    /// the model's parameters.
    pub fn with_artifact_reader(mut self, reader: &ArtifactReader) -> Result<Self, Error> {
        reader.load_into(self.model.store_mut())?;
        Ok(self)
    }

    /// Assembles the pipeline, validating that the backend and the model
    /// run the same exposure mask and agree on exposure-count
    /// normalization.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Pipeline`] on a backend/model mask or
    /// normalization mismatch.
    pub fn build(self) -> Result<Pipeline<S>, Error> {
        if self.backend.normalizes() != self.model.normalize_by_exposure {
            return Err(Error::Pipeline {
                context: format!(
                    "backend normalization ({}) contradicts the model's \
                     normalize_by_exposure flag ({}): inputs would be scaled \
                     differently from the model's training data",
                    self.backend.normalizes(),
                    self.model.normalize_by_exposure
                ),
            });
        }
        if self.backend.mask() != self.model.mask() {
            return Err(Error::Pipeline {
                context: format!(
                    "backend mask ({} slots, tile {:?}) differs from the model's \
                     co-designed mask ({} slots, tile {:?})",
                    self.backend.mask().num_slots(),
                    self.backend.mask().tile(),
                    self.model.mask().num_slots(),
                    self.model.mask().tile()
                ),
            });
        }
        Ok(Pipeline {
            model: self.model,
            backend: self.backend,
            pool: SessionPool::new(),
            pending: Vec::new(),
            max_pending: self.max_pending,
            threads: self.threads,
            tracer: self.tracer,
            profile: PipelineProfile::default(),
        })
    }

    /// Assembles `replicas` identical pipelines from this one recipe.
    ///
    /// The model's weights are moved into shared read-only storage
    /// first, so every replica references the *same* buffers — one
    /// resident copy of the weights however many workers serve from
    /// them (weights loaded via [`with_artifact`](Self::with_artifact)
    /// already share the artifact's single payload buffer). Each
    /// replica still owns its backend copy (including any backend RNG
    /// state — replicas with a noisy readout draw independent,
    /// identically-seeded noise streams) and a fresh private session,
    /// so the inference hot path stays lock-free and each replica can
    /// serve from its own thread. This is the construction path behind
    /// `snappix-serve`'s worker pool.
    ///
    /// # Errors
    ///
    /// Same validation as [`build`](Self::build).
    pub fn build_replicas(mut self, replicas: usize) -> Result<Vec<Pipeline<S>>, Error>
    where
        S: Clone,
    {
        self.model.store_mut().make_shared();
        let mut out = Vec::with_capacity(replicas);
        for _ in 1..replicas {
            out.push(self.clone().build()?);
        }
        if replicas > 0 {
            out.push(self.build()?);
        }
        Ok(out)
    }
}

/// The batched SnapPix inference engine.
///
/// Clips go through the [`Sense`] backend (algorithmic encoder or
/// hardware simulation), the coded images drive the co-designed ViT in
/// *one* forward pass per batch, and the session behind that pass is
/// reused across calls via a persistent [`SessionPool`] — the structure
/// a node serving heavy traffic needs, instead of the per-clip
/// allocate-and-drop of the retired `SnapPixSystem`.
///
/// Single-clip callers can still reach batched throughput through the
/// [`submit`](Self::submit)/[`flush`](Self::flush) micro-batching queue.
///
/// # Examples
///
/// ```no_run
/// use snappix::prelude::*;
///
/// # fn main() -> Result<(), snappix::Error> {
/// let mask = patterns::long_exposure(8, (8, 8))?;
/// let model = SnapPixAr::new(VitConfig::snappix_s(16, 16, 5), mask)?;
/// let mut pipeline = Pipeline::builder(model).build()?;
/// let clips = Tensor::zeros(&[8, 8, 16, 16]); // [batch, t, h, w]
/// let out = pipeline.infer(&clips)?;
/// assert_eq!(out.labels.len(), 8);
/// # Ok(())
/// # }
/// ```
pub struct Pipeline<S: Sense = AlgorithmicEncoder> {
    model: SnapPixAr,
    backend: S,
    pool: SessionPool,
    pending: Vec<Tensor>,
    max_pending: usize,
    threads: Option<usize>,
    tracer: Tracer,
    profile: PipelineProfile,
}

impl<S: Sense> std::fmt::Debug for Pipeline<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pipeline")
            .field("model", &self.model.name().to_string())
            .field("classes", &self.model.num_classes())
            .field("pending", &self.pending.len())
            .field("max_pending", &self.max_pending)
            .finish()
    }
}

impl Pipeline<AlgorithmicEncoder> {
    /// Starts building a pipeline around `model`, defaulting to the
    /// training-time [`AlgorithmicEncoder`] backend configured from the
    /// model's own mask and normalization flag.
    pub fn builder(model: SnapPixAr) -> PipelineBuilder<AlgorithmicEncoder> {
        let backend = AlgorithmicEncoder::new(model.mask().clone())
            .with_normalization(model.normalize_by_exposure);
        PipelineBuilder {
            model,
            backend,
            max_pending: 8,
            threads: None,
            tracer: Tracer::disabled(),
        }
    }
}

impl<S: Sense + Clone> Pipeline<S> {
    /// Stamps out a new pipeline running the same model and backend as
    /// this one.
    ///
    /// The weights are moved into shared read-only storage first (hence
    /// `&mut self`), so the replica references the same buffers as this
    /// pipeline instead of deep-copying them. The replica gets its own
    /// backend state, a fresh session, and an *empty* micro-batch queue
    /// (clips pending in this pipeline are not copied). Because `self`
    /// was already validated at build time, no re-validation is needed —
    /// this is the cheap way to scale an existing engine across worker
    /// threads.
    pub fn replicate(&mut self) -> Pipeline<S> {
        self.model.store_mut().make_shared();
        Pipeline {
            model: self.model.clone(),
            backend: self.backend.clone(),
            pool: SessionPool::new(),
            pending: Vec::new(),
            max_pending: self.max_pending,
            threads: self.threads,
            tracer: self.tracer.clone(),
            profile: PipelineProfile::default(),
        }
    }
}

impl<S: Sense> Pipeline<S>
where
    Error: From<S::Error>,
{
    /// The vision model.
    pub fn model(&self) -> &SnapPixAr {
        &self.model
    }

    /// The sensing backend.
    ///
    /// Only shared access is offered: replacing or reconfiguring the
    /// backend could break the mask/normalization agreement that
    /// [`PipelineBuilder::build`] validated — rebuild through the
    /// builder instead.
    pub fn backend(&self) -> &S {
        &self.backend
    }

    /// Number of output classes.
    pub fn num_classes(&self) -> usize {
        self.model.num_classes()
    }

    /// Clips currently queued by [`submit`](Self::submit).
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// The micro-batch size at which [`submit`](Self::submit)
    /// auto-flushes.
    pub fn max_pending(&self) -> usize {
        self.max_pending
    }

    /// The pinned worker count, if [`PipelineBuilder::with_threads`] set
    /// one; `None` means the ambient `SNAPPIX_THREADS` / machine default
    /// applies.
    pub fn threads(&self) -> Option<usize> {
        self.threads
    }

    /// The span recorder this pipeline emits stage spans into
    /// (disabled unless [`PipelineBuilder::with_tracer`] attached one).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Cumulative per-stage timing since the pipeline was built (or
    /// since the last [`take_profile`](Self::take_profile)).
    pub fn profile(&self) -> &PipelineProfile {
        &self.profile
    }

    /// Drains the profile: returns everything accumulated since the
    /// last take and resets the counters. Serving workers call this
    /// after each batch to push per-stage deltas into the server-wide
    /// aggregate.
    pub fn take_profile(&mut self) -> PipelineProfile {
        std::mem::take(&mut self.profile)
    }

    /// Bytes of weight memory this pipeline keeps resident, counting
    /// each shared buffer once. For fleet-wide accounting across
    /// replicas use [`resident_weight_bytes`], which deduplicates
    /// buffers shared *between* pipelines.
    pub fn weight_bytes(&self) -> usize {
        snappix_nn::resident_weight_bytes([self.model.store()])
    }

    /// Senses one `[t, h, w]` clip into the coded image the node would
    /// transmit, without classifying it.
    ///
    /// # Errors
    ///
    /// Fails when the clip does not match the backend.
    pub fn sense(&mut self, clip: &Tensor) -> Result<Tensor, Error> {
        let tracer = self.tracer.clone();
        with_pool(self.threads, || {
            let started = Instant::now();
            let span = tracer.span("sense");
            let coded = self.backend.sense(clip);
            drop(span);
            self.profile.sense.record(started.elapsed());
            coded
        })
        .map_err(Error::from)
    }

    /// Classifies a `[batch, t, h, w]` clip batch in one model forward
    /// pass, reusing the pipeline's session. Sensing is batched when the
    /// backend supports it (the algorithmic encoder does; the hardware
    /// simulation captures clip by clip, as a physical sensor would).
    ///
    /// Batching is the throughput path: per-clip graph construction and
    /// tensor allocation are amortized over the whole batch (see the
    /// `pipeline` criterion bench and BENCHMARKS.md).
    ///
    /// An *empty* batch (`[0, t, h, w]`, any trailing extents) is
    /// well-defined and returns an empty [`Inference`] without touching
    /// the backend — batching front-ends (e.g. the `snappix-serve`
    /// dynamic batcher) can race to a flush with zero clips and must not
    /// blow up.
    ///
    /// # Errors
    ///
    /// Fails when the clips do not match the backend or the model.
    pub fn infer(&mut self, clips: &Tensor) -> Result<Inference, Error> {
        if clips.rank() == 4 && clips.shape()[0] == 0 {
            return Ok(Inference::empty(self.model.num_classes()));
        }
        let tracer = self.tracer.clone();
        let batch = clips.shape().first().copied().unwrap_or(0);
        with_pool(self.threads, || {
            let started = Instant::now();
            let mut span = tracer.span("sense");
            span.arg("clips", batch);
            let coded = self.backend.sense_batch(clips);
            drop(span);
            self.profile.sense.record(started.elapsed());
            self.infer_coded(&coded?)
        })
    }

    /// Classifies one `[t, h, w]` clip.
    ///
    /// Prefer [`infer`](Self::infer) (or
    /// [`submit`](Self::submit)/[`flush`](Self::flush)) when more than
    /// one clip is available — the batched path is substantially faster
    /// than a loop over this method.
    ///
    /// # Errors
    ///
    /// Fails when the clip does not match the backend or the model.
    pub fn infer_clip(&mut self, clip: &Tensor) -> Result<Prediction, Error> {
        let tracer = self.tracer.clone();
        with_pool(self.threads, || {
            let started = Instant::now();
            let mut span = tracer.span("sense");
            span.arg("clips", 1usize);
            let coded = self.backend.sense(clip);
            drop(span);
            self.profile.sense.record(started.elapsed());
            let coded = coded?;
            let batch = coded.reshape(&[1, coded.shape()[0], coded.shape()[1]])?;
            self.infer_coded(&batch)
        })?
        .prediction(0)
    }

    /// Classifies one `[t, h, w]` clip and returns only the label.
    ///
    /// # Errors
    ///
    /// Fails when the clip does not match the backend or the model.
    pub fn classify(&mut self, clip: &Tensor) -> Result<usize, Error> {
        Ok(self.infer_clip(clip)?.label)
    }

    /// Queues one `[t, h, w]` clip for micro-batched inference.
    ///
    /// Returns `Ok(None)` while the queue is filling; once
    /// [`max_pending`](Self::max_pending) clips are pending the queue is
    /// flushed through one batched forward pass and the drained batch's
    /// [`Inference`] is returned (clip order = submission order). Call
    /// [`flush`](Self::flush) to force out a partial batch.
    ///
    /// # Errors
    ///
    /// Fails when the clip does not match the model's `[t, h, w]`
    /// geometry — rejected up front so one bad clip can never poison an
    /// already-filled queue at flush time. Sensing/model errors still
    /// surface at flush time.
    pub fn submit(&mut self, clip: &Tensor) -> Result<Option<Inference>, Error> {
        let cfg = self.model.encoder().config();
        let expected = [self.model.mask().num_slots(), cfg.height, cfg.width];
        if clip.shape() != expected {
            return Err(Error::Pipeline {
                context: format!(
                    "submit expects a [t, h, w] = {expected:?} clip, got {:?}",
                    clip.shape()
                ),
            });
        }
        self.pending.push(clip.clone());
        if self.pending.len() >= self.max_pending {
            return Ok(Some(self.flush()?));
        }
        Ok(None)
    }

    /// Drains the [`submit`](Self::submit) queue through one batched
    /// forward pass.
    ///
    /// Flushing an empty queue returns an empty [`Inference`].
    ///
    /// # Errors
    ///
    /// Fails when a queued clip does not match the backend or the model;
    /// the queue is drained either way.
    pub fn flush(&mut self) -> Result<Inference, Error> {
        if self.pending.is_empty() {
            return Ok(Inference::empty(self.model.num_classes()));
        }
        let pending = std::mem::take(&mut self.pending);
        let refs: Vec<&Tensor> = pending.iter().collect();
        let clips = Tensor::stack(&refs, 0)?;
        self.infer(&clips)
    }

    /// One batched forward pass over already-coded `[batch, h, w]`
    /// images, reusing the pooled session.
    fn infer_coded(&mut self, coded: &Tensor) -> Result<Inference, Error> {
        let tracer = self.tracer.clone();
        let started = Instant::now();
        let span = tracer.span("forward");
        let mut sess = self.pool.inference(self.model.store());
        let logits = self
            .model
            .build_logits_from_coded(&mut sess, coded)
            .map(|var| sess.graph.value(var).clone());
        self.pool.reclaim(sess);
        drop(span);
        self.profile.forward.record(started.elapsed());
        let logits = logits?;
        let started = Instant::now();
        let span = tracer.span("readout");
        let labels = logits.argmax_axis(1);
        drop(span);
        self.profile.readout.record(started.elapsed());
        let labels = labels?;
        self.profile.batches += 1;
        self.profile.clips += labels.len() as u64;
        Ok(Inference { logits, labels })
    }
}

/// Bytes of weight memory actually resident across `pipelines`,
/// counting each shared backing buffer once no matter how many replicas
/// reference it.
///
/// Replicas stamped out by [`PipelineBuilder::build_replicas`] (or
/// loaded from one artifact) share storage, so n of them cost the same
/// as one; independently built pipelines each contribute their own
/// copy. This is the number `snappix-serve` surfaces in its
/// `ServerStats`.
pub fn resident_weight_bytes<'a, S, I>(pipelines: I) -> usize
where
    S: Sense + 'a,
    I: IntoIterator<Item = &'a Pipeline<S>>,
{
    snappix_nn::resident_weight_bytes(pipelines.into_iter().map(|p| p.model.store()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use snappix_ce::patterns;
    use snappix_models::VitConfig;
    use snappix_tensor::argmax_coords;

    fn model() -> SnapPixAr {
        let mask = patterns::long_exposure(4, (8, 8)).unwrap();
        SnapPixAr::new(VitConfig::snappix_s(16, 16, 5), mask).unwrap()
    }

    fn clips(batch: usize) -> Tensor {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        Tensor::rand_uniform(&mut rng, &[batch, 4, 16, 16], 0.0, 1.0)
    }

    #[test]
    fn batched_infer_matches_per_clip_inference() {
        let mut p = Pipeline::builder(model()).build().unwrap();
        let clips = clips(3);
        let batched = p.infer(&clips).unwrap();
        assert_eq!(batched.logits.shape(), &[3, 5]);
        assert_eq!(batched.len(), 3);
        assert!(!batched.is_empty());
        for b in 0..3 {
            let single = p.infer_clip(&clips.index_axis(0, b).unwrap()).unwrap();
            let row = batched.prediction(b).unwrap();
            assert_eq!(single.label, row.label);
            assert!(single.logits.approx_eq(&row.logits, 0.0), "clip {b}");
        }
    }

    #[test]
    fn repeated_infer_reuses_session_and_is_deterministic() {
        // Regression test for the old `SnapPixSystem::logits`, which
        // rebuilt the graph and session on every call: repeated calls on
        // the same pipeline must produce identical logits.
        let mut p = Pipeline::builder(model()).build().unwrap();
        let clips = clips(2);
        let first = p.infer(&clips).unwrap();
        for _ in 0..3 {
            let again = p.infer(&clips).unwrap();
            assert!(again.logits.approx_eq(&first.logits, 0.0));
            assert_eq!(again.labels, first.labels);
        }
    }

    #[test]
    fn submit_flush_microbatches_in_order() {
        let mut p = Pipeline::builder(model())
            .with_max_pending(2)
            .build()
            .unwrap();
        assert_eq!(p.max_pending(), 2);
        let clips = clips(3);
        let c: Vec<Tensor> = (0..3).map(|b| clips.index_axis(0, b).unwrap()).collect();

        assert!(p.submit(&c[0]).unwrap().is_none());
        assert_eq!(p.pending(), 1);
        let auto = p.submit(&c[1]).unwrap().expect("auto-flush at capacity");
        assert_eq!(auto.len(), 2);
        assert_eq!(p.pending(), 0);
        assert!(p.submit(&c[2]).unwrap().is_none());
        let partial = p.flush().unwrap();
        assert_eq!(partial.len(), 1);

        // Order and values match direct per-clip inference.
        for (i, clip) in c.iter().enumerate().take(2) {
            let direct = p.infer_clip(clip).unwrap();
            assert_eq!(direct.label, auto.labels[i]);
        }
        assert_eq!(p.infer_clip(&c[2]).unwrap().label, partial.labels[0]);

        // Flushing an empty queue is a harmless no-op.
        assert!(p.flush().unwrap().is_empty());
        // Submitting a batch where a clip belongs is rejected up front.
        assert!(p.submit(&clips).is_err());
        // So is a rank-3 clip of the wrong geometry — and neither
        // rejection poisons clips already queued.
        assert!(p.submit(&c[0]).unwrap().is_none());
        assert!(p.submit(&Tensor::zeros(&[4, 8, 8])).is_err());
        assert_eq!(p.pending(), 1);
        assert_eq!(p.flush().unwrap().len(), 1);
    }

    #[test]
    fn hardware_backend_agrees_with_algorithmic_on_argmax() {
        let mut sw = Pipeline::builder(model()).build().unwrap();
        let mut hw = Pipeline::builder(model())
            .with_hardware_sensor(ReadoutConfig::noiseless(12, 4.0))
            .unwrap()
            .build()
            .unwrap();
        let clips = clips(2);
        let a = sw.infer(&clips).unwrap();
        let b = hw.infer(&clips).unwrap();
        assert_eq!(a.labels, b.labels);
        assert_eq!(
            argmax_coords(&a.logits),
            argmax_coords(&b.logits),
            "12-bit noiseless ADC must not flip the decision"
        );
        assert!(hw.backend().stats().pixels_read > 0);
    }

    #[test]
    fn builder_rejects_mask_mismatch_and_bad_shapes() {
        let other_mask = patterns::short_exposure(4, (8, 8), 2).unwrap();
        let err = Pipeline::builder(model())
            .with_backend(AlgorithmicEncoder::new(other_mask))
            .build();
        assert!(matches!(err, Err(Error::Pipeline { .. })));

        // A backend whose normalization contradicts the model's flag is
        // rejected too — it would silently rescale the model's inputs.
        let m = model();
        let backend = AlgorithmicEncoder::new(m.mask().clone()).with_normalization(false);
        let err = Pipeline::builder(m).with_backend(backend).build();
        assert!(matches!(err, Err(Error::Pipeline { .. })));

        let mut p = Pipeline::builder(model()).build().unwrap();
        assert!(p.infer(&Tensor::zeros(&[4, 16, 16])).is_err());
        assert!(p.infer_clip(&Tensor::zeros(&[3, 16, 16])).is_err());
        assert_eq!(p.num_classes(), 5);
        assert!(format!("{p:?}").contains("Pipeline"));
    }

    #[test]
    fn empty_batch_infers_to_empty_inference() {
        // Regression: the serve-layer batcher can race to a flush with
        // zero clips; `[0, t, h, w]` must mean "nothing to do", not a
        // shape error.
        let mut p = Pipeline::builder(model()).build().unwrap();
        let out = p.infer(&Tensor::zeros(&[0, 4, 16, 16])).unwrap();
        assert!(out.is_empty());
        assert_eq!(out.len(), 0);
        assert_eq!(out.logits.shape(), &[0, 5]);
        assert_eq!(out.predictions().count(), 0);
        // Trailing extents of an empty batch are irrelevant: zero clips
        // of any geometry is still zero clips.
        assert!(p.infer(&Tensor::zeros(&[0, 9, 3, 3])).unwrap().is_empty());
        // A rank mismatch is still an error even at batch 0.
        assert!(p.infer(&Tensor::zeros(&[0, 16, 16])).is_err());
    }

    #[test]
    fn predictions_iterate_in_batch_order() {
        let mut p = Pipeline::builder(model()).build().unwrap();
        let out = p.infer(&clips(3)).unwrap();
        assert_eq!(out.predictions().len(), 3);
        for (i, pred) in out.predictions().enumerate() {
            let by_index = out.prediction(i).unwrap();
            assert_eq!(pred, by_index);
        }
        // `&Inference` and owned `Inference` iterate identically.
        let borrowed: Vec<Prediction> = (&out).into_iter().collect();
        let labels = out.labels.clone();
        let owned: Vec<Prediction> = out.into_iter().collect();
        assert_eq!(borrowed, owned);
        assert_eq!(
            owned.iter().map(|p| p.label).collect::<Vec<_>>(),
            labels,
            "iteration preserves batch order"
        );
    }

    #[test]
    fn replicas_are_independent_but_identical() {
        let replicas = Pipeline::builder(model())
            .with_max_pending(3)
            .build_replicas(2)
            .unwrap();
        assert_eq!(replicas.len(), 2);
        let clips = clips(2);
        let mut outs = Vec::new();
        for mut p in replicas {
            assert_eq!(p.max_pending(), 3);
            outs.push(p.infer(&clips).unwrap());
        }
        assert!(outs[0].logits.approx_eq(&outs[1].logits, 0.0));
        assert_eq!(outs[0].labels, outs[1].labels);

        // `replicate` on a built pipeline agrees too, and leaves pending
        // clips behind.
        let mut original = Pipeline::builder(model()).build().unwrap();
        original.submit(&clips.index_axis(0, 0).unwrap()).unwrap();
        let mut copy = original.replicate();
        assert_eq!(original.pending(), 1);
        assert_eq!(copy.pending(), 0);
        let a = original.flush().unwrap();
        let b = copy.infer_clip(&clips.index_axis(0, 0).unwrap()).unwrap();
        assert_eq!(a.labels[0], b.label);
        assert!(a.logits.index_axis(0, 0).unwrap().approx_eq(&b.logits, 0.0));

        // Zero replicas is a valid (empty) request.
        assert!(Pipeline::builder(model())
            .build_replicas(0)
            .unwrap()
            .is_empty());
        // Replication still validates the recipe.
        let m = model();
        let bad = AlgorithmicEncoder::new(m.mask().clone()).with_normalization(false);
        assert!(Pipeline::builder(m)
            .with_backend(bad)
            .build_replicas(2)
            .is_err());
    }

    #[test]
    fn artifact_loaded_pipeline_matches_load_params() {
        use snappix_nn::{load_params, save_params, write_artifact};
        let mut path = std::env::temp_dir();
        path.push(format!("snappix_pipeline_artifact_{}", std::process::id()));
        let spx = path.with_extension("spx");
        let snpx = path.with_extension("snpx");

        // Fresh models are seeded, so one instance's weights stand in
        // for a trained checkpoint.
        let trained = model();
        save_params(trained.store(), &snpx).unwrap();
        write_artifact(trained.store(), &spx).unwrap();

        let mut legacy_model = model();
        load_params(legacy_model.store_mut(), &snpx).unwrap();
        let mut legacy = Pipeline::builder(legacy_model).build().unwrap();
        let mut from_artifact = Pipeline::builder(model())
            .with_artifact(&spx)
            .unwrap()
            .build()
            .unwrap();

        let clips = clips(3);
        let a = legacy.infer(&clips).unwrap();
        let b = from_artifact.infer(&clips).unwrap();
        assert!(
            a.logits.approx_eq(&b.logits, 0.0),
            "artifact weights must be bit-for-bit equal to load_params weights"
        );
        assert_eq!(a.labels, b.labels);

        // A malformed artifact is a typed error through the builder.
        std::fs::write(&spx, b"garbage").unwrap();
        assert!(matches!(
            Pipeline::builder(model()).with_artifact(&spx),
            Err(Error::Nn(_))
        ));
        std::fs::remove_file(spx).ok();
        std::fs::remove_file(snpx).ok();
    }

    #[test]
    fn replicas_share_one_weight_storage() {
        use std::sync::Arc;
        let solo = Pipeline::builder(model()).build().unwrap();
        let solo_bytes = solo.weight_bytes();
        assert!(solo_bytes > 0);

        let replicas = Pipeline::builder(model()).build_replicas(4).unwrap();
        // Every replica's every parameter points at the same buffer as
        // replica 0's.
        let first = replicas[0].model().store();
        for replica in &replicas[1..] {
            let store = replica.model().store();
            for (id_a, id_b) in first.ids().into_iter().zip(store.ids()) {
                assert!(Arc::ptr_eq(
                    first.value(id_a).shared_buffer().unwrap(),
                    store.value(id_b).shared_buffer().unwrap()
                ));
            }
        }
        // Four replicas resident ≈ one copy, not four.
        assert_eq!(resident_weight_bytes(&replicas), solo_bytes);
        assert_eq!(
            replicas.iter().map(Pipeline::weight_bytes).sum::<usize>(),
            4 * solo_bytes
        );

        // replicate() shares too.
        let mut original = Pipeline::builder(model()).build().unwrap();
        let copy = original.replicate();
        assert_eq!(
            resident_weight_bytes([&original, &copy]),
            solo_bytes,
            "replicate() must not deep-copy the weights"
        );
    }

    #[test]
    fn profile_accumulates_and_spans_nest_per_stage() {
        let tracer = Tracer::new();
        let mut p = Pipeline::builder(model())
            .with_tracer(tracer.clone())
            .build()
            .unwrap();
        assert!(p.tracer().is_enabled());
        assert!(p.profile().is_empty());

        let out = p.infer(&clips(3)).unwrap();
        assert_eq!(out.len(), 3);
        let profile = p.profile();
        assert_eq!(profile.batches, 1);
        assert_eq!(profile.clips, 3);
        for (name, stage) in [
            ("sense", &profile.sense),
            ("forward", &profile.forward),
            ("readout", &profile.readout),
        ] {
            assert_eq!(stage.calls, 1, "{name} ran once");
            assert!(stage.total >= stage.max, "{name} total >= max");
            assert!(stage.mean() <= stage.max, "{name} mean <= max");
        }

        // One span per stage, all on the background trace, all roots
        // (nothing was open above them).
        let snap = tracer.snapshot();
        let names: Vec<&str> = snap.records.iter().map(|r| r.name).collect();
        assert_eq!(names, vec!["sense", "forward", "readout"]);
        assert!(snap.records.iter().all(|r| r.trace_id == 0));
        // Under an open request span they parent to it instead.
        {
            let root = tracer.span_in(
                "request",
                snappix_trace::SpanCtx {
                    trace_id: tracer.new_trace_id(),
                    span_id: 0,
                },
            );
            let trace = root.trace_id();
            p.infer(&clips(2)).unwrap();
            let snap = tracer.snapshot();
            let stage_spans: Vec<_> = snap
                .records
                .iter()
                .filter(|r| r.trace_id == trace)
                .collect();
            assert_eq!(stage_spans.len(), 3);
            assert!(stage_spans.iter().all(|r| r.parent == root.ctx().span_id));
        }

        // take_profile drains.
        let taken = p.take_profile();
        assert_eq!(taken.batches, 2);
        assert!(p.profile().is_empty());
        assert!(format!("{taken}").contains("2 batches"));

        // Tracing does not perturb results: the same clips through an
        // untraced pipeline match bit for bit.
        let mut plain = Pipeline::builder(model()).build().unwrap();
        let traced = p.infer(&clips(3)).unwrap();
        let untraced = plain.infer(&clips(3)).unwrap();
        assert!(traced.logits.approx_eq(&untraced.logits, 0.0));
        assert_eq!(traced.labels, untraced.labels);
    }

    #[test]
    fn sense_exposes_the_backend_coded_image() {
        let mut p = Pipeline::builder(model()).build().unwrap();
        let coded = p.sense(&Tensor::full(&[4, 16, 16], 0.5)).unwrap();
        assert_eq!(coded.shape(), &[16, 16]);
        // Long exposure of constant 0.5, normalized -> 0.5.
        assert!(coded.approx_eq(&Tensor::full(&[16, 16], 0.5), 1e-6));
        assert!(p.backend().normalizes());
    }
}
