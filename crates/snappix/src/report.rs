//! Deployment evaluation: accuracy, protocol activity and energy of a
//! hardware-backed [`Pipeline`](crate::Pipeline) over a dataset, in one
//! report.

use crate::{EdgeNode, Error, Pipeline};
use snappix_energy::Wireless;
use snappix_sensor::HardwareSensor;
use snappix_video::Dataset;

/// Result of evaluating a deployed pipeline over a dataset through the
/// full hardware simulation path.
#[derive(Debug, Clone, PartialEq)]
pub struct DeploymentReport {
    /// Clips evaluated.
    pub clips: usize,
    /// Correct classifications.
    pub correct: usize,
    /// Pattern-clock cycles per capture (constant for a fixed geometry).
    pub pattern_clock_cycles_per_capture: u64,
    /// Pixels read out per capture.
    pub pixels_read_per_capture: u64,
    /// Edge energy per capture window in microjoules (SnapPix pipeline).
    pub energy_uj_per_capture: f64,
    /// Edge energy a conventional camera would spend per window, µJ.
    pub conventional_energy_uj_per_capture: f64,
}

impl DeploymentReport {
    /// Classification accuracy in percent.
    pub fn accuracy(&self) -> f32 {
        if self.clips == 0 {
            return f32::NAN;
        }
        100.0 * self.correct as f32 / self.clips as f32
    }

    /// Edge energy saving factor versus conventional capture.
    pub fn energy_saving(&self) -> f64 {
        self.conventional_energy_uj_per_capture / self.energy_uj_per_capture
    }

    /// Energy per *correct* classification in microjoules — the figure of
    /// merit for an accuracy/energy co-design.
    pub fn energy_uj_per_correct(&self) -> f64 {
        if self.correct == 0 {
            return f64::INFINITY;
        }
        self.energy_uj_per_capture * self.clips as f64 / self.correct as f64
    }
}

/// Runs every clip of `dataset` through the hardware path of `pipeline`
/// and combines the outcome with the energy model for `wireless`.
///
/// Clips are served through the pipeline's
/// [`submit`](Pipeline::submit)/[`flush`](Pipeline::flush) micro-batching
/// queue, so the model forward passes are batched exactly as a deployed
/// node would batch them.
///
/// # Errors
///
/// Returns [`Error`] when a clip does not match the sensor, and
/// [`Error::Pipeline`] for an empty dataset or when the pipeline still
/// has clips pending from an earlier [`submit`](Pipeline::submit) (they
/// would misalign the evaluation's labels — flush them first).
pub fn evaluate_deployment(
    pipeline: &mut Pipeline<HardwareSensor>,
    dataset: &Dataset,
    wireless: Wireless,
) -> Result<DeploymentReport, Error> {
    if dataset.is_empty() {
        return Err(Error::Pipeline {
            context: "deployment evaluation needs a non-empty dataset".to_string(),
        });
    }
    if pipeline.pending() != 0 {
        return Err(Error::Pipeline {
            context: format!(
                "deployment evaluation needs an empty submit queue, but {} clip(s) \
                 are pending — call flush() first",
                pipeline.pending()
            ),
        });
    }
    let mut labels = Vec::with_capacity(dataset.len());
    for i in 0..dataset.len() {
        if let Some(batch) = pipeline.submit(dataset.sample(i).video.frames())? {
            labels.extend(batch.labels);
        }
    }
    labels.extend(pipeline.flush()?.labels);
    let correct = labels
        .iter()
        .enumerate()
        .filter(|&(i, &label)| label == dataset.sample(i).label)
        .count();

    let stats = pipeline.backend().stats();
    let sensor = pipeline.backend().sensor();
    let node = EdgeNode::new(
        sensor.height() * sensor.width(),
        pipeline.model().mask().num_slots(),
        wireless,
    );
    Ok(DeploymentReport {
        clips: dataset.len(),
        correct,
        pattern_clock_cycles_per_capture: stats.pattern_clock_cycles,
        pixels_read_per_capture: stats.pixels_read,
        energy_uj_per_capture: node.snappix_energy().total_pj() / 1e6,
        conventional_energy_uj_per_capture: node.conventional_energy().total_pj() / 1e6,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use snappix_ce::patterns;
    use snappix_models::{SnapPixAr, VitConfig};
    use snappix_sensor::ReadoutConfig;
    use snappix_video::ssv2_like;

    fn pipeline() -> Pipeline<HardwareSensor> {
        let mask = patterns::long_exposure(8, (8, 8)).expect("valid dims");
        let model = SnapPixAr::new(VitConfig::snappix_s(16, 16, 10), mask).expect("geometry");
        Pipeline::builder(model)
            .with_hardware_sensor(ReadoutConfig::noiseless(8, 8.0))
            .expect("assembly")
            .with_max_pending(4)
            .build()
            .expect("mask agreement")
    }

    #[test]
    fn report_counts_and_energy_are_consistent() {
        let mut p = pipeline();
        let data = Dataset::new(ssv2_like(8, 16, 16), 6);
        let report = evaluate_deployment(&mut p, &data, Wireless::PassiveWifi).expect("evaluation");
        assert_eq!(report.clips, 6);
        assert!(report.correct <= 6);
        assert!(report.accuracy() >= 0.0 && report.accuracy() <= 100.0);
        assert!(report.energy_saving() > 1.0);
        assert_eq!(report.pixels_read_per_capture, 16 * 16);
        assert_eq!(report.pattern_clock_cycles_per_capture, (2 * 8 * 64) as u64);
        assert!(
            report.energy_uj_per_correct() >= report.energy_uj_per_capture
                || report.correct == report.clips
        );
        assert_eq!(p.pending(), 0, "evaluation must drain the queue");
    }

    #[test]
    fn microbatched_evaluation_matches_per_clip_classification() {
        let mut p = pipeline();
        let data = Dataset::new(ssv2_like(8, 16, 16), 5);
        let report = evaluate_deployment(&mut p, &data, Wireless::PassiveWifi).expect("evaluation");
        let mut correct = 0usize;
        for i in 0..data.len() {
            let sample = data.sample(i);
            if p.classify(sample.video.frames()).expect("classify") == sample.label {
                correct += 1;
            }
        }
        assert_eq!(report.correct, correct);
    }

    #[test]
    fn empty_dataset_errors() {
        let mut p = pipeline();
        let empty = Dataset::new(ssv2_like(8, 16, 16), 0);
        assert!(evaluate_deployment(&mut p, &empty, Wireless::PassiveWifi).is_err());
    }

    #[test]
    fn stale_pending_clips_are_rejected_not_misattributed() {
        let mut p = pipeline();
        let data = Dataset::new(ssv2_like(8, 16, 16), 3);
        p.submit(data.sample(0).video.frames()).expect("submit");
        let err = evaluate_deployment(&mut p, &data, Wireless::PassiveWifi).unwrap_err();
        assert!(
            err.to_string().contains("pending"),
            "expected a pending-queue error, got: {err}"
        );
        // The queue is untouched; flushing it unblocks evaluation.
        assert_eq!(p.pending(), 1);
        p.flush().expect("flush");
        assert!(evaluate_deployment(&mut p, &data, Wireless::PassiveWifi).is_ok());
    }

    #[test]
    fn zero_correct_gives_infinite_energy_per_correct() {
        let report = DeploymentReport {
            clips: 4,
            correct: 0,
            pattern_clock_cycles_per_capture: 1,
            pixels_read_per_capture: 1,
            energy_uj_per_capture: 1.0,
            conventional_energy_uj_per_capture: 8.0,
        };
        assert!(report.energy_uj_per_correct().is_infinite());
        assert_eq!(report.accuracy(), 0.0);
        assert_eq!(report.energy_saving(), 8.0);
        let empty = DeploymentReport { clips: 0, ..report };
        assert!(empty.accuracy().is_nan());
    }
}
