//! Edge-node deployment planning: what does a capture window cost?

use snappix_energy::{EnergyBreakdown, EnergyModel, Scenario, Wireless};

/// An edge sensing node description, combining the sensor geometry with an
/// offload link to price deployments (paper Sec. VI-D).
///
/// Configuration follows the workspace's builder-style `with_*` idiom
/// shared with [`PipelineBuilder`](crate::PipelineBuilder): constructors
/// pick documented defaults and each `with_*` method returns `self` with
/// one knob changed. In particular, [`EdgeNode::new`] prices components
/// with [`EnergyModel::paper`] — override it explicitly with
/// [`with_energy_model`](Self::with_energy_model) for sensitivity
/// studies.
///
/// # Examples
///
/// ```
/// use snappix::EdgeNode;
/// use snappix_energy::{EnergyModel, Wireless};
///
/// let node = EdgeNode::new(112 * 112, 16, Wireless::LoraBackscatter);
/// assert!(node.snappix_saving() > 10.0); // the paper reports 15.4x at long range
///
/// // Same node, re-priced with a custom component model and a short link.
/// let custom = node
///     .with_energy_model(EnergyModel::paper())
///     .with_wireless(Wireless::PassiveWifi);
/// assert!(custom.snappix_saving() > 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeNode {
    model: EnergyModel,
    scenario: Scenario,
}

impl EdgeNode {
    /// Describes a node capturing `frame_pixels`-pixel frames in windows
    /// of `slots` frames, offloading over `wireless`.
    ///
    /// Defaults to the paper's component energy model
    /// ([`EnergyModel::paper`]).
    pub fn new(frame_pixels: usize, slots: usize, wireless: Wireless) -> Self {
        EdgeNode {
            model: EnergyModel::paper(),
            scenario: Scenario {
                frame_pixels,
                slots,
                wireless,
            },
        }
    }

    /// Replaces the component energy model (for sensitivity studies).
    #[must_use]
    pub fn with_energy_model(mut self, model: EnergyModel) -> Self {
        self.model = model;
        self
    }

    /// Replaces the offload link.
    #[must_use]
    pub fn with_wireless(mut self, wireless: Wireless) -> Self {
        self.scenario.wireless = wireless;
        self
    }

    /// The underlying scenario.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// Energy of a conventional (read-every-frame) node per capture
    /// window.
    pub fn conventional_energy(&self) -> EnergyBreakdown {
        self.model.conventional_energy(&self.scenario)
    }

    /// Energy of a SnapPix node per capture window.
    pub fn snappix_energy(&self) -> EnergyBreakdown {
        self.model.snappix_energy(&self.scenario)
    }

    /// Edge energy saving factor of SnapPix over conventional capture.
    pub fn snappix_saving(&self) -> f64 {
        self.model.edge_energy_saving(&self.scenario)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scenarios() {
        let short = EdgeNode::new(112 * 112, 16, Wireless::PassiveWifi);
        assert!((short.snappix_saving() - 7.6).abs() < 0.2);
        let long = EdgeNode::new(112 * 112, 16, Wireless::LoraBackscatter);
        assert!(long.snappix_saving() > short.snappix_saving());
    }

    #[test]
    fn custom_model_changes_results() {
        let node = EdgeNode::new(1024, 16, Wireless::PassiveWifi);
        let mut custom = EnergyModel::paper();
        custom.ce_overhead_pj_per_pixel_slot = 0.0;
        let cheaper_ce = node.with_energy_model(custom);
        assert!(cheaper_ce.snappix_saving() > node.snappix_saving());
        assert_eq!(node.scenario().slots, 16);
    }

    #[test]
    fn with_wireless_swaps_only_the_link() {
        let short = EdgeNode::new(112 * 112, 16, Wireless::PassiveWifi);
        let long = short.with_wireless(Wireless::LoraBackscatter);
        assert_eq!(long.scenario().slots, 16);
        assert!(long.snappix_saving() > short.snappix_saving());
        assert_eq!(
            long.with_wireless(Wireless::PassiveWifi),
            short,
            "round-tripping the link restores the node"
        );
    }

    #[test]
    fn breakdowns_are_consistent_with_saving() {
        let node = EdgeNode::new(2048, 8, Wireless::Custom(50.0));
        let ratio = node.conventional_energy().total_pj() / node.snappix_energy().total_pj();
        assert!((ratio - node.snappix_saving()).abs() < 1e-9);
    }
}
