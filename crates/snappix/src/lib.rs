//! SnapPix: efficient-coding-inspired in-sensor compression for edge
//! vision — a from-scratch Rust reproduction of the DAC 2025 paper.
//!
//! SnapPix reduces edge sensing energy by compressing video *inside the
//! image sensor* with coded exposure (CE): each pixel is selectively
//! exposed across `T` time slots and the exposures integrate into a single
//! coded image, cutting read-out and transmission energy by `T`x. The
//! exposure pattern is learned task-agnostically by *decorrelating* coded
//! pixels (the efficient-coding principle of the retina), and the
//! downstream vision model is a ViT co-designed with the tile-repetitive
//! pattern.
//!
//! This crate is the public face of the workspace. Its centerpiece is
//! [`Pipeline`], a throughput-first batched inference engine built via
//! [`PipelineBuilder`]: it owns a persistent session (graph allocations
//! are reused across calls), accepts `[batch, t, h, w]` clip batches, and
//! is generic over the [`Sense`](snappix_ce::Sense) backend so the
//! training-time algorithmic encoder
//! ([`AlgorithmicEncoder`](snappix_ce::AlgorithmicEncoder)) and the
//! deployment-time hardware simulation
//! ([`HardwareSensor`](snappix_sensor::HardwareSensor)) run through
//! identical code. [`EdgeNode`] prices deployments with the paper's
//! energy model, [`evaluate_deployment`] combines both, and every failure
//! across the stack surfaces as the unified [`Error`].
//!
//! One layer above this crate, `snappix-serve` turns a single
//! [`PipelineBuilder`] recipe into a multi-client service: worker
//! threads each run a pipeline replica (stamped out via
//! [`PipelineBuilder::build_replicas`]), a dynamic batcher coalesces
//! concurrent requests into one batched [`Pipeline::infer`] call, and a
//! bounded admission queue sheds overload explicitly. Above *that*,
//! `snappix-stream` serves continuous per-camera frame streams:
//! sliding-window assembly, temporal smoothing, label-change events,
//! and per-stream overload policies over a shared server. Both layers'
//! failures unify into [`Error`] through its boxed `Serve` and `Stream`
//! variants.
//!
//! Hot kernels across the workspace (matmul, convolutions, Pearson
//! statistics, the sensor capture simulation) fan out across the shared
//! data-parallel layer in [`snappix_tensor::parallel`]: worker count from
//! `SNAPPIX_THREADS` or the machine's available parallelism, overridable
//! per pipeline with [`PipelineBuilder::with_threads`]. Results are
//! bit-for-bit identical at every thread count.
//!
//! # Quickstart
//!
//! ```no_run
//! use snappix::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 1. Data: a procedural stand-in for SSV2 (see DESIGN.md).
//! let data = Dataset::new(ssv2_like(16, 32, 32), 200);
//! let (train, test) = data.split(0.8);
//!
//! // 2. Learn the exposure pattern by decorrelation (task-agnostic).
//! let mut trainer = DecorrelationTrainer::new(DecorrelationConfig::default())?;
//! let learned = trainer.train(&train, 30)?;
//!
//! // 3. Train the co-designed ViT on coded images.
//! let mut model = SnapPixAr::new(VitConfig::snappix_s(32, 32, 10), learned.mask.clone())?;
//! train_action_model(&mut model, &train, &TrainOptions::experiment(10))?;
//!
//! // 4. Deploy: a batched engine over the simulated sensor hardware.
//! let mut pipeline = Pipeline::builder(model)
//!     .with_hardware_sensor(ReadoutConfig::default())?
//!     .with_max_pending(8)
//!     .build()?;
//!
//! // Batched inference: one forward pass for the whole batch.
//! let batch = test.batch(0, 8);
//! let out = pipeline.infer(&batch.videos)?;
//! println!("predicted {:?}, truth {:?}", out.labels, batch.labels);
//!
//! // Single-clip callers reach the same batched path via submit/flush.
//! for i in 0..test.len() {
//!     if let Some(done) = pipeline.submit(test.sample(i).video.frames())? {
//!         println!("micro-batch of {} classified", done.len());
//!     }
//! }
//! let rest = pipeline.flush()?;
//! println!("{} stragglers classified", rest.len());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod node;
mod pipeline;
mod report;

pub use error::Error;
pub use node::EdgeNode;
pub use pipeline::{
    resident_weight_bytes, Inference, IntoPredictions, Pipeline, PipelineBuilder, PipelineProfile,
    Prediction, Predictions, StageProfile,
};
pub use report::{evaluate_deployment, DeploymentReport};

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use crate::{
        evaluate_deployment, resident_weight_bytes, DeploymentReport, EdgeNode, Error, Inference,
        Pipeline, PipelineBuilder, PipelineProfile, Prediction, StageProfile,
    };
    pub use snappix_ce::{
        encode, encode_batch, encode_batch_normalized, encode_normalized,
        measure_pattern_correlation, normalize_coded, patterns, AlgorithmicEncoder,
        DecorrelationConfig, DecorrelationTrainer, ExposureMask, PatternKind, Sense,
    };
    pub use snappix_energy::{EnergyModel, Scenario, Wireless};
    pub use snappix_models::{
        evaluate_accuracy, measure_inference_rate, train_action_model, ActionModel, C3d,
        DownsampleVideoVit, MaeConfig, MaePretrainer, SnapPixAr, SnapPixRec, Svc2d, TrainOptions,
        VideoVit, VitConfig,
    };
    pub use snappix_nn::{
        convert_params_to_artifact, load_params, save_params, write_artifact, ArtifactReader,
    };
    pub use snappix_sensor::{CeSensor, HardwareSensor, Readout, ReadoutConfig};
    pub use snappix_tensor::parallel;
    pub use snappix_tensor::Tensor;
    pub use snappix_trace::{SpanCtx, SpanRecord, TraceSnapshot, Tracer};
    pub use snappix_video::{k400_like, psnr, ssv2_like, ucf101_like, ActionClass, Dataset, Video};
}
