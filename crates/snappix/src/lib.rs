//! SnapPix: efficient-coding-inspired in-sensor compression for edge
//! vision — a from-scratch Rust reproduction of the DAC 2025 paper.
//!
//! SnapPix reduces edge sensing energy by compressing video *inside the
//! image sensor* with coded exposure (CE): each pixel is selectively
//! exposed across `T` time slots and the exposures integrate into a single
//! coded image, cutting read-out and transmission energy by `T`x. The
//! exposure pattern is learned task-agnostically by *decorrelating* coded
//! pixels (the efficient-coding principle of the retina), and the
//! downstream vision model is a ViT co-designed with the tile-repetitive
//! pattern.
//!
//! This crate is the public face of the workspace: it re-exports every
//! subsystem and adds [`SnapPixSystem`], an end-to-end pipeline that runs
//! a clip through the *hardware sensor simulation* (per-pixel charge
//! model, shift-register pattern streaming, ADC) and classifies the coded
//! image — plus [`EdgeNode`], the energy accounting for deployment
//! planning.
//!
//! # Quickstart
//!
//! ```no_run
//! use snappix::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 1. Data: a procedural stand-in for SSV2 (see DESIGN.md).
//! let data = Dataset::new(ssv2_like(16, 32, 32), 200);
//! let (train, test) = data.split(0.8);
//!
//! // 2. Learn the exposure pattern by decorrelation (task-agnostic).
//! let mut trainer = DecorrelationTrainer::new(DecorrelationConfig::default())?;
//! let learned = trainer.train(&train, 30)?;
//!
//! // 3. Train the co-designed ViT on coded images.
//! let mut model = SnapPixAr::new(VitConfig::snappix_s(32, 32, 10), learned.mask.clone())?;
//! train_action_model(&mut model, &train, &TrainOptions::experiment(10))?;
//!
//! // 4. Deploy: run clips through the simulated sensor hardware.
//! let mut system = SnapPixSystem::new(model, ReadoutConfig::default())?;
//! let sample = test.sample(0);
//! let predicted = system.classify(sample.video.frames())?;
//! println!("predicted class {predicted}, truth {}", sample.label);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod node;
mod report;
mod system;

pub use node::EdgeNode;
pub use report::{evaluate_deployment, DeploymentReport};
pub use system::{SnapPixSystem, SystemError};

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use crate::{evaluate_deployment, DeploymentReport, EdgeNode, SnapPixSystem, SystemError};
    pub use snappix_ce::{
        encode, encode_batch, encode_batch_normalized, encode_normalized,
        measure_pattern_correlation, normalize_coded, patterns, DecorrelationConfig,
        DecorrelationTrainer, ExposureMask, PatternKind,
    };
    pub use snappix_energy::{EnergyModel, Scenario, Wireless};
    pub use snappix_models::{
        evaluate_accuracy, measure_inference_rate, train_action_model, ActionModel, C3d,
        DownsampleVideoVit, MaeConfig, MaePretrainer, SnapPixAr, SnapPixRec, Svc2d, TrainOptions,
        VideoVit, VitConfig,
    };
    pub use snappix_sensor::{CeSensor, Readout, ReadoutConfig};
    pub use snappix_tensor::Tensor;
    pub use snappix_video::{k400_like, psnr, ssv2_like, ucf101_like, ActionClass, Dataset, Video};
}
