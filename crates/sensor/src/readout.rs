//! Readout chain: shot noise, read noise and ADC quantization.
//!
//! The paper's energy analysis attributes ~66% of sensor energy to the
//! ADC; this module models the *signal* side of that readout so the
//! downstream models can be evaluated on realistically quantized coded
//! images.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use snappix_tensor::Tensor;

/// Configuration of the readout chain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadoutConfig {
    /// ADC resolution in bits (the paper's energy numbers assume 8).
    pub adc_bits: u32,
    /// Analog full scale: FD charge mapping to the top code. For a
    /// `t`-slot capture of unit-range irradiance this is normally `t`.
    pub full_scale: f32,
    /// Full-well capacity in electrons (controls shot-noise magnitude).
    pub full_well_electrons: f32,
    /// Gaussian read noise in electrons RMS.
    pub read_noise_electrons: f32,
    /// Enables Poisson-approximated shot noise.
    pub shot_noise: bool,
    /// RNG seed for noise realizations.
    pub seed: u64,
}

impl Default for ReadoutConfig {
    fn default() -> Self {
        ReadoutConfig {
            adc_bits: 8,
            full_scale: 16.0,
            full_well_electrons: 10_000.0,
            read_noise_electrons: 2.5,
            shot_noise: true,
            seed: 0,
        }
    }
}

impl ReadoutConfig {
    /// A noiseless, quantization-only configuration (useful for tests and
    /// for isolating codec behaviour).
    pub fn noiseless(adc_bits: u32, full_scale: f32) -> Self {
        ReadoutConfig {
            adc_bits,
            full_scale,
            full_well_electrons: 1.0,
            read_noise_electrons: 0.0,
            shot_noise: false,
            seed: 0,
        }
    }
}

/// Stateful readout chain (owns its noise RNG).
#[derive(Debug, Clone)]
pub struct Readout {
    config: ReadoutConfig,
    rng: StdRng,
}

impl Readout {
    /// Creates a readout chain from `config`.
    pub fn new(config: ReadoutConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        Readout { config, rng }
    }

    /// The configuration in use.
    pub fn config(&self) -> &ReadoutConfig {
        &self.config
    }

    /// Digitizes an analog charge image: adds shot noise (Poisson
    /// approximated as Gaussian with variance = signal electrons) and read
    /// noise, then quantizes to `adc_bits` and returns values *normalized
    /// back to `[0, full_scale]`* so they remain comparable to the analog
    /// input.
    pub fn digitize(&mut self, analog: &Tensor) -> Tensor {
        let cfg = self.config;
        let max_code = ((1u64 << cfg.adc_bits) - 1) as f32;
        let mut out = analog.clone();
        for v in out.as_mut_slice() {
            let charge = *v;
            let mut electrons = (charge / cfg.full_scale).clamp(0.0, 1.0) * cfg.full_well_electrons;
            if cfg.shot_noise && electrons > 0.0 {
                electrons += self.sample_normal() * electrons.sqrt();
            }
            if cfg.read_noise_electrons > 0.0 {
                electrons += self.sample_normal() * cfg.read_noise_electrons;
            }
            let normalized = (electrons / cfg.full_well_electrons).clamp(0.0, 1.0);
            let code = (normalized * max_code).round();
            *v = code / max_code * cfg.full_scale;
        }
        out
    }

    fn sample_normal(&mut self) -> f32 {
        let u1: f32 = self.rng.random_range(f32::EPSILON..1.0);
        let u2: f32 = self.rng.random_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noiseless_quantization_is_monotone_and_bounded() {
        let mut r = Readout::new(ReadoutConfig::noiseless(8, 16.0));
        let analog = Tensor::linspace(0.0, 16.0, 100);
        let digital = r.digitize(&analog);
        let d = digital.as_slice();
        for w in d.windows(2) {
            assert!(w[1] >= w[0], "quantization must be monotone");
        }
        assert!(d.iter().all(|&x| (0.0..=16.0).contains(&x)));
    }

    #[test]
    fn noiseless_error_bounded_by_half_lsb() {
        let mut r = Readout::new(ReadoutConfig::noiseless(8, 16.0));
        let analog = Tensor::linspace(0.0, 16.0, 257);
        let digital = r.digitize(&analog);
        let lsb = 16.0 / 255.0;
        for (&a, &d) in analog.as_slice().iter().zip(digital.as_slice()) {
            assert!((a - d).abs() <= 0.5 * lsb + 1e-5, "a {a} d {d}");
        }
    }

    #[test]
    fn low_bit_depth_coarsens_output() {
        let analog = Tensor::linspace(0.0, 1.0, 1000);
        let mut r2 = Readout::new(ReadoutConfig::noiseless(2, 1.0));
        let d2 = r2.digitize(&analog);
        let mut distinct: Vec<i64> = d2
            .as_slice()
            .iter()
            .map(|&x| (x * 1000.0).round() as i64)
            .collect();
        distinct.sort();
        distinct.dedup();
        assert_eq!(distinct.len(), 4, "2-bit ADC has exactly 4 codes");
    }

    #[test]
    fn saturation_clamps_at_full_scale() {
        let mut r = Readout::new(ReadoutConfig::noiseless(8, 1.0));
        let analog = Tensor::full(&[4], 100.0);
        let digital = r.digitize(&analog);
        assert!(digital.as_slice().iter().all(|&x| (x - 1.0).abs() < 1e-6));
    }

    #[test]
    fn shot_noise_scales_with_signal() {
        let cfg = ReadoutConfig {
            adc_bits: 12,
            full_scale: 1.0,
            full_well_electrons: 1000.0,
            read_noise_electrons: 0.0,
            shot_noise: true,
            seed: 1,
        };
        let mut r = Readout::new(cfg);
        let dim = Tensor::full(&[4000], 0.05);
        let bright = Tensor::full(&[4000], 0.8);
        let dim_out = r.digitize(&dim);
        let bright_out = r.digitize(&bright);
        let dim_std = dim_out.variance().sqrt();
        let bright_std = bright_out.variance().sqrt();
        assert!(
            bright_std > dim_std,
            "shot noise must grow with signal: {bright_std} vs {dim_std}"
        );
    }

    #[test]
    fn noise_is_seed_reproducible() {
        let cfg = ReadoutConfig::default();
        let analog = Tensor::full(&[64], 4.0);
        let a = Readout::new(cfg).digitize(&analog);
        let b = Readout::new(cfg).digitize(&analog);
        assert_eq!(a, b);
    }
}
