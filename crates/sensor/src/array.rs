//! The full coded-exposure sensor array with shift-register pattern
//! streaming (paper Sec. V).

use crate::{CePixel, Readout, Result, SensorError};
use snappix_ce::ExposureMask;
use snappix_tensor::{parallel, Tensor};

/// Shift-register clock edges each scoped worker must receive before it
/// is worth spawning, fed to [`parallel::workers_for`] (a shift is a few
/// ops, so this slab runs on the order of 250 µs).
const PAR_SHIFTS_PER_WORKER: usize = 1 << 20;

/// Cycle and pulse accounting for one capture, used by the energy model to
/// price the CE control overhead (the paper reports 9 pJ/pixel at a
/// 20 MHz pattern clock).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CaptureStats {
    /// Pattern-clock cycles spent streaming CE bits.
    pub pattern_clock_cycles: u64,
    /// `M6` (pattern-reset) pulses issued.
    pub pattern_reset_pulses: u64,
    /// `M7` (pattern-transfer) pulses issued.
    pub pattern_transfer_pulses: u64,
    /// Exposure slots integrated.
    pub exposure_slots: u64,
    /// Pixels read out.
    pub pixels_read: u64,
}

/// A behavioral coded-exposure sensor: an `h x w` array of [`CePixel`]s
/// whose bottom-die DFFs form one shift register per exposure tile.
///
/// [`CeSensor::capture`] runs the full slot protocol of Sec. V and returns
/// the analog FD image, which equals the algorithmic Eqn. 1 encoding
/// exactly (property-tested in the workspace integration tests).
#[derive(Debug, Clone)]
pub struct CeSensor {
    width: usize,
    height: usize,
    mask: ExposureMask,
    pixels: Vec<CePixel>,
    stats: CaptureStats,
}

impl CeSensor {
    /// Builds a sensor of `height x width` pixels running `mask`.
    ///
    /// # Errors
    ///
    /// Returns [`SensorError::Geometry`] when extents are zero or the mask
    /// tile does not divide the array.
    pub fn new(height: usize, width: usize, mask: ExposureMask) -> Result<Self> {
        let (th, tw) = mask.tile();
        if height == 0 || width == 0 {
            return Err(SensorError::Geometry {
                context: "sensor extents must be positive".to_string(),
            });
        }
        if !height.is_multiple_of(th) || !width.is_multiple_of(tw) {
            return Err(SensorError::Geometry {
                context: format!("tile {th}x{tw} does not divide array {height}x{width}"),
            });
        }
        Ok(CeSensor {
            width,
            height,
            mask,
            pixels: vec![CePixel::new(); height * width],
            stats: CaptureStats::default(),
        })
    }

    /// Array height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Array width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The exposure mask programmed into the controller.
    pub fn mask(&self) -> &ExposureMask {
        &self.mask
    }

    /// Accounting from the most recent capture.
    pub fn stats(&self) -> CaptureStats {
        self.stats
    }

    /// Direct access to a pixel's state (diagnostics and tests).
    ///
    /// # Errors
    ///
    /// Returns [`SensorError::Geometry`] for out-of-range coordinates.
    pub fn pixel(&self, y: usize, x: usize) -> Result<&CePixel> {
        if y >= self.height || x >= self.width {
            return Err(SensorError::Geometry {
                context: format!("pixel ({y}, {x}) outside {}x{}", self.height, self.width),
            });
        }
        Ok(&self.pixels[y * self.width + x])
    }

    /// Captures a `[t, h, w]` irradiance video through the slot protocol
    /// and returns the analog `[h, w]` FD image.
    ///
    /// Protocol per slot (paper Sec. V): stream bits, pulse `M6`
    /// (conditional PD reset), integrate the slot, stream the same bits
    /// again, pulse `M7` (conditional transfer), power-gate the DFFs.
    ///
    /// The simulation runs the protocol per *band* of `th` pixel rows:
    /// shift chains never leave their tile, and per-pixel reset, exposure
    /// and transfer are purely local, so bands are fully independent.
    /// Large captures split the bands across the shared worker pool (see
    /// [`snappix_tensor::parallel`]); with `SNAPPIX_THREADS=1` — or a
    /// small array — all bands run on the calling thread. Either way
    /// every pixel sees the exact same operation sequence, so results
    /// are bit-for-bit identical at every thread count.
    ///
    /// # Errors
    ///
    /// Returns [`SensorError::Stimulus`] when the video does not match the
    /// sensor resolution or the mask's slot count.
    pub fn capture(&mut self, video: &Tensor) -> Result<Tensor> {
        if video.rank() != 3 {
            return Err(SensorError::Stimulus {
                context: format!("expected [t, h, w] video, got {:?}", video.shape()),
            });
        }
        let (t, h, w) = (video.shape()[0], video.shape()[1], video.shape()[2]);
        if t != self.mask.num_slots() || h != self.height || w != self.width {
            return Err(SensorError::Stimulus {
                context: format!(
                    "video {t}x{h}x{w} does not match sensor {}x{}x{}",
                    self.mask.num_slots(),
                    self.height,
                    self.width
                ),
            });
        }
        for p in &mut self.pixels {
            *p = CePixel::new();
            p.reset_fd();
        }
        let (th, tw) = self.mask.tile();
        let chain_len = th * tw;
        let pattern = self.mask.pattern().as_slice();
        // Chain position k of a tile sits at tile row k / tw, tile column
        // k % tw; precomputing the band-slice offsets removes a div/mod
        // from every shift of the innermost loop.
        let chain: Vec<usize> = (0..chain_len).map(|k| (k / tw) * w + (k % tw)).collect();
        let tiles_x = w / tw;
        let frames = video.as_slice();
        let run_band = |band_index: usize, band: &mut [CePixel]| {
            let row0 = band_index * th;
            for slot in 0..t {
                let slot_bits = &pattern[slot * chain_len..(slot + 1) * chain_len];
                // Phase 1: program the slot's bits and conditionally
                // reset PDs.
                stream_band(band, slot_bits, &chain, tiles_x, tw);
                for p in band.iter_mut() {
                    p.pattern_reset();
                }
                // Phase 2: integrate the slot (every PD integrates;
                // gating is done purely through reset/transfer).
                let frame = &frames[(slot * h + row0) * w..(slot * h + row0 + th) * w];
                for (p, &light) in band.iter_mut().zip(frame) {
                    p.expose(light, 1.0);
                }
                // Phase 3: re-stream the same bits and conditionally
                // transfer.
                stream_band(band, slot_bits, &chain, tiles_x, tw);
                for p in band.iter_mut() {
                    p.pattern_transfer();
                }
            }
        };
        let band_pixels = th * w;
        // Dominant cost: two streams per slot, each clocking every pixel
        // `chain_len` times.
        let workers = parallel::workers_for(2 * t * h * w * chain_len, PAR_SHIFTS_PER_WORKER);
        parallel::with_threads(workers, || {
            parallel::par_chunks_mut(&mut self.pixels, band_pixels, run_band)
        });
        // Protocol accounting is deterministic in the geometry: two
        // streams of `chain_len` cycles plus one reset and one transfer
        // pulse per slot (matching the per-call counting the serial loop
        // used to do).
        self.stats = CaptureStats {
            pattern_clock_cycles: 2 * t as u64 * chain_len as u64,
            pattern_reset_pulses: t as u64,
            pattern_transfer_pulses: t as u64,
            exposure_slots: t as u64,
            pixels_read: (h * w) as u64,
        };
        // Rolling readout of the FD array.
        let mut out = Tensor::zeros(&[h, w]);
        let data = out.as_mut_slice();
        for (d, p) in data.iter_mut().zip(&self.pixels) {
            *d = p.read();
        }
        Ok(out)
    }

    /// Captures and digitizes in one call: the analog image from
    /// [`CeSensor::capture`] pushed through a [`Readout`] chain (noise +
    /// ADC).
    ///
    /// # Errors
    ///
    /// Same conditions as [`CeSensor::capture`].
    pub fn capture_digital(&mut self, video: &Tensor, readout: &mut Readout) -> Result<Tensor> {
        let analog = self.capture(video)?;
        Ok(readout.digitize(&analog))
    }
}

/// Streams one slot's CE bits into every shift register of a band of
/// `th` pixel rows (one tile-row of the array).
///
/// All tiles stream in parallel in hardware (each has its own 4-wire
/// interface); the pattern clock runs `chain.len()` cycles and bits are
/// pushed last-pixel-first so that after the final cycle pixel `k` of
/// each tile holds bit `k`. Tiles never interact, so the simulation walks
/// them one at a time (all cycles of a tile before the next tile) —
/// the per-pixel operation sequence is identical to clocking all tiles
/// in lockstep, and the tile's pixels stay cache-hot across cycles.
///
/// `chain[k]` is the precomputed band-slice offset of chain position `k`
/// from the tile's origin.
fn stream_band(
    band: &mut [CePixel],
    slot_bits: &[f32],
    chain: &[usize],
    tiles_x: usize,
    tw: usize,
) {
    // Ungate every DFF for streaming.
    for p in band.iter_mut() {
        p.set_gated(false);
    }
    let chain_len = chain.len();
    for tx in 0..tiles_x {
        let origin = tx * tw;
        for cycle in 0..chain_len {
            // Bit entering the chain this cycle (reverse order). Walk the
            // chain front-to-back so each pixel consumes its
            // predecessor's previous output within one clock edge.
            let mut carry = slot_bits[chain_len - 1 - cycle] != 0.0;
            for &offset in chain {
                carry = band[origin + offset].shift(carry);
            }
        }
    }
    // Power-gate again once the bits are in place.
    for p in band.iter_mut() {
        p.set_gated(true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use snappix_ce::{encode, patterns};

    #[test]
    fn geometry_validation() {
        let mask = patterns::long_exposure(2, (4, 4)).unwrap();
        assert!(CeSensor::new(0, 8, mask.clone()).is_err());
        assert!(CeSensor::new(8, 9, mask.clone()).is_err());
        assert!(CeSensor::new(8, 8, mask).is_ok());
    }

    #[test]
    fn stimulus_validation() {
        let mask = patterns::long_exposure(2, (4, 4)).unwrap();
        let mut sensor = CeSensor::new(8, 8, mask).unwrap();
        assert!(sensor.capture(&Tensor::zeros(&[3, 8, 8])).is_err());
        assert!(sensor.capture(&Tensor::zeros(&[2, 4, 8])).is_err());
        assert!(sensor.capture(&Tensor::zeros(&[8, 8])).is_err());
    }

    #[test]
    fn capture_matches_algorithmic_encode() {
        let mut rng = StdRng::seed_from_u64(0);
        for seed in 0..5u64 {
            let mut mask_rng = StdRng::seed_from_u64(seed);
            let mask = patterns::random(4, (4, 4), 0.5, &mut mask_rng).unwrap();
            let video = Tensor::rand_uniform(&mut rng, &[4, 8, 8], 0.0, 1.0);
            let mut sensor = CeSensor::new(8, 8, mask.clone()).unwrap();
            let hw = sensor.capture(&video).unwrap();
            let sw = encode(&video, &mask).unwrap();
            assert!(
                hw.approx_eq(&sw, 1e-5),
                "hardware and Eqn. 1 disagree for seed {seed}"
            );
        }
    }

    #[test]
    fn sparse_random_mask_matches_encode() {
        let mut rng = StdRng::seed_from_u64(1);
        let mask = patterns::sparse_random(8, (2, 2), &mut rng).unwrap();
        let video = Tensor::rand_uniform(&mut rng, &[8, 6, 6], 0.0, 1.0);
        let mut sensor = CeSensor::new(6, 6, mask.clone()).unwrap();
        let hw = sensor.capture(&video).unwrap();
        let sw = encode(&video, &mask).unwrap();
        assert!(hw.approx_eq(&sw, 1e-5));
    }

    /// A capture must be bit-for-bit identical across thread counts 1, 2
    /// and > bands, including a geometry large enough to cross the
    /// parallel threshold, with identical protocol accounting.
    #[test]
    fn capture_parallel_matches_serial_bit_for_bit() {
        use snappix_tensor::parallel::with_threads;
        let mut rng = StdRng::seed_from_u64(5);
        // 48x48 with 8x8 tiles at t=16: 6 bands, ~4.7M shift edges —
        // several workers' worth of PAR_SHIFTS_PER_WORKER.
        let mask = patterns::random(16, (8, 8), 0.5, &mut rng).unwrap();
        let video = Tensor::rand_uniform(&mut rng, &[16, 48, 48], 0.0, 1.0);
        let (reference, ref_stats) = with_threads(1, || {
            let mut sensor = CeSensor::new(48, 48, mask.clone()).unwrap();
            let img = sensor.capture(&video).unwrap();
            (img, sensor.stats())
        });
        for threads in [2usize, 5, 40] {
            let (img, stats) = with_threads(threads, || {
                let mut sensor = CeSensor::new(48, 48, mask.clone()).unwrap();
                let img = sensor.capture(&video).unwrap();
                (img, sensor.stats())
            });
            assert_eq!(img.as_slice(), reference.as_slice(), "{threads} threads");
            assert_eq!(stats, ref_stats, "{threads} threads");
        }
    }

    #[test]
    fn stats_account_for_protocol() {
        let mask = patterns::long_exposure(4, (2, 2)).unwrap();
        let mut sensor = CeSensor::new(4, 4, mask).unwrap();
        sensor.capture(&Tensor::zeros(&[4, 4, 4])).unwrap();
        let stats = sensor.stats();
        // 2 streams per slot x 4 slots x 4 cycles per stream.
        assert_eq!(stats.pattern_clock_cycles, 2 * 4 * 4);
        assert_eq!(stats.pattern_reset_pulses, 4);
        assert_eq!(stats.pattern_transfer_pulses, 4);
        assert_eq!(stats.exposure_slots, 4);
        assert_eq!(stats.pixels_read, 16);
    }

    #[test]
    fn second_capture_is_independent() {
        let mask = patterns::long_exposure(2, (2, 2)).unwrap();
        let mut sensor = CeSensor::new(4, 4, mask).unwrap();
        let bright = sensor.capture(&Tensor::full(&[2, 4, 4], 1.0)).unwrap();
        let dark = sensor.capture(&Tensor::zeros(&[2, 4, 4])).unwrap();
        assert_eq!(bright.as_slice()[0], 2.0);
        assert_eq!(dark.sum(), 0.0, "FD must be reset between captures");
    }

    #[test]
    fn pixel_accessor_bounds() {
        let mask = patterns::long_exposure(2, (2, 2)).unwrap();
        let sensor = CeSensor::new(4, 4, mask).unwrap();
        assert!(sensor.pixel(3, 3).is_ok());
        assert!(sensor.pixel(4, 0).is_err());
    }

    #[test]
    fn shift_register_places_asymmetric_pattern_correctly() {
        // Slot 0 exposes only tile pixel (0, 1); the coded image must
        // light up exactly the columns congruent to 1 mod 2.
        let mut p = Tensor::zeros(&[1, 2, 2]);
        p.set(&[0, 0, 1], 1.0).unwrap();
        let mask = ExposureMask::new(p).unwrap();
        let mut sensor = CeSensor::new(4, 4, mask).unwrap();
        let img = sensor.capture(&Tensor::ones(&[1, 4, 4])).unwrap();
        for y in 0..4 {
            for x in 0..4 {
                let expected = if y % 2 == 0 && x % 2 == 1 { 1.0 } else { 0.0 };
                assert_eq!(img.get(&[y, x]).unwrap(), expected, "pixel ({y}, {x})");
            }
        }
    }
}
