use snappix_ce::CeError;
use snappix_tensor::TensorError;
use std::fmt;

/// Error type for the sensor simulator.
#[derive(Debug)]
pub enum SensorError {
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// A coded-exposure component (mask validation) failed.
    Ce(CeError),
    /// The sensor geometry is invalid (zero extents, tile not dividing the
    /// array).
    Geometry {
        /// Human-readable description of the problem.
        context: String,
    },
    /// The stimulus video does not match the sensor (wrong resolution or
    /// slot count).
    Stimulus {
        /// Human-readable description of the problem.
        context: String,
    },
}

impl fmt::Display for SensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SensorError::Tensor(e) => write!(f, "tensor error: {e}"),
            SensorError::Ce(e) => write!(f, "coded-exposure error: {e}"),
            SensorError::Geometry { context } => write!(f, "invalid geometry: {context}"),
            SensorError::Stimulus { context } => write!(f, "invalid stimulus: {context}"),
        }
    }
}

impl std::error::Error for SensorError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SensorError::Tensor(e) => Some(e),
            SensorError::Ce(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for SensorError {
    fn from(e: TensorError) -> Self {
        SensorError::Tensor(e)
    }
}

impl From<CeError> for SensorError {
    fn from(e: CeError) -> Self {
        SensorError::Ce(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e: SensorError = TensorError::InvalidArgument {
            context: "x".into(),
        }
        .into();
        assert!(e.to_string().contains("tensor"));
        assert!(std::error::Error::source(&e).is_some());
        let g = SensorError::Geometry {
            context: "tile".into(),
        };
        assert!(g.to_string().contains("tile"));
    }
}
