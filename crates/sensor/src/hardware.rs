//! The deployment-path [`Sense`] backend: charge-domain capture plus the
//! readout chain, behind the same trait as the algorithmic encoder.

use crate::{CaptureStats, CeSensor, Readout, ReadoutConfig, Result};
use snappix_ce::{normalize_coded, ExposureMask, Sense};
use snappix_tensor::Tensor;

/// The hardware [`Sense`] backend: clips pass through the simulated CE
/// pixel array ([`CeSensor`]), optionally a noisy/quantizing [`Readout`],
/// and optionally the paper's exposure-count normalization — producing
/// the coded image a deployed node would transmit.
///
/// Configuration follows the workspace's builder-style `with_*` idiom:
/// [`HardwareSensor::new`] picks documented defaults (ideal readout,
/// normalization on) and each `with_*` method returns `self` with one
/// knob changed.
///
/// With the default *ideal* readout (no noise, no ADC) this backend is
/// bit-for-bit equivalent to `snappix_ce::AlgorithmicEncoder` — the
/// paper's central hardware-correctness claim, property-tested in the
/// workspace integration tests.
///
/// # Examples
///
/// ```
/// use snappix_ce::{patterns, Sense};
/// use snappix_sensor::{HardwareSensor, ReadoutConfig};
/// use snappix_tensor::Tensor;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mask = patterns::long_exposure(4, (4, 4))?;
/// let mut hw = HardwareSensor::new(8, 8, mask)?
///     .with_readout(ReadoutConfig::noiseless(8, 4.0));
/// let coded = hw.sense(&Tensor::full(&[4, 8, 8], 0.5))?;
/// assert_eq!(coded.shape(), &[8, 8]);
/// assert!(hw.stats().pixels_read > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct HardwareSensor {
    sensor: CeSensor,
    readout: Option<Readout>,
    normalize: bool,
}

impl HardwareSensor {
    /// Builds a backend around a `height x width` sensor running `mask`.
    ///
    /// Defaults: *ideal* readout (the analog FD image is used directly —
    /// no noise, no quantization) and exposure-count normalization on.
    /// Use [`with_readout`](Self::with_readout) to model a real chain and
    /// [`with_normalization`](Self::with_normalization) for the raw
    /// ablation.
    ///
    /// # Errors
    ///
    /// Returns [`SensorError::Geometry`](crate::SensorError::Geometry)
    /// when the extents are zero or the mask tile does not divide the
    /// array.
    pub fn new(height: usize, width: usize, mask: ExposureMask) -> Result<Self> {
        Ok(HardwareSensor {
            sensor: CeSensor::new(height, width, mask)?,
            readout: None,
            normalize: true,
        })
    }

    /// Wraps an already-built [`CeSensor`] (ideal readout, normalization
    /// on).
    pub fn from_sensor(sensor: CeSensor) -> Self {
        HardwareSensor {
            sensor,
            readout: None,
            normalize: true,
        }
    }

    /// Digitizes captures through a [`Readout`] chain built from
    /// `config` (shot/read noise and ADC quantization).
    #[must_use]
    pub fn with_readout(mut self, config: ReadoutConfig) -> Self {
        self.readout = Some(Readout::new(config));
        self
    }

    /// Removes the readout chain again: captures return the analog FD
    /// image directly.
    #[must_use]
    pub fn with_ideal_readout(mut self) -> Self {
        self.readout = None;
        self
    }

    /// Sets whether coded pixels are divided by their exposure count
    /// before being returned (the paper's pre-ViT normalization).
    #[must_use]
    pub fn with_normalization(mut self, normalize: bool) -> Self {
        self.normalize = normalize;
        self
    }

    /// The underlying pixel array.
    pub fn sensor(&self) -> &CeSensor {
        &self.sensor
    }

    /// The readout chain, if one is configured.
    pub fn readout(&self) -> Option<&Readout> {
        self.readout.as_ref()
    }

    /// Protocol accounting from the most recent capture (for energy
    /// models).
    pub fn stats(&self) -> CaptureStats {
        self.sensor.stats()
    }
}

impl Sense for HardwareSensor {
    type Error = crate::SensorError;

    fn mask(&self) -> &ExposureMask {
        self.sensor.mask()
    }

    fn normalizes(&self) -> bool {
        self.normalize
    }

    fn sense(&mut self, clip: &Tensor) -> Result<Tensor> {
        let analog = self.sensor.capture(clip)?;
        let digital = match &mut self.readout {
            Some(readout) => readout.digitize(&analog),
            None => analog,
        };
        Ok(if self.normalize {
            normalize_coded(&digital, self.sensor.mask())
        } else {
            digital
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use snappix_ce::{patterns, AlgorithmicEncoder};

    #[test]
    fn ideal_sensor_equals_algorithmic_encoder() {
        let mut rng = StdRng::seed_from_u64(11);
        let mask = patterns::random(4, (4, 4), 0.5, &mut rng).unwrap();
        let clip = Tensor::rand_uniform(&mut rng, &[4, 8, 8], 0.0, 1.0);
        let mut hw = HardwareSensor::new(8, 8, mask.clone()).unwrap();
        let mut sw = AlgorithmicEncoder::new(mask);
        let a = hw.sense(&clip).unwrap();
        let b = sw.sense(&clip).unwrap();
        assert!(a.approx_eq(&b, 1e-5));
        assert!(hw.normalizes() && hw.readout().is_none());
        assert_eq!(hw.stats().pixels_read, 64);
    }

    #[test]
    fn readout_quantizes_and_can_be_removed() {
        let mask = patterns::long_exposure(4, (4, 4)).unwrap();
        let clip = Tensor::full(&[4, 8, 8], 0.5);
        let mut ideal = HardwareSensor::new(8, 8, mask.clone()).unwrap();
        let mut coarse = HardwareSensor::new(8, 8, mask.clone())
            .unwrap()
            .with_readout(ReadoutConfig::noiseless(2, 4.0));
        let exact = ideal.sense(&clip).unwrap();
        let quantized = coarse.sense(&clip).unwrap();
        assert!(!exact.approx_eq(&quantized, 1e-6), "2-bit ADC must bite");
        let mut restored = coarse.clone().with_ideal_readout();
        assert!(restored.sense(&clip).unwrap().approx_eq(&exact, 0.0));
    }

    #[test]
    fn normalization_flag_controls_output_scale() {
        let mask = patterns::long_exposure(4, (4, 4)).unwrap();
        let clip = Tensor::full(&[4, 8, 8], 0.5);
        let mut raw = HardwareSensor::new(8, 8, mask.clone())
            .unwrap()
            .with_normalization(false);
        assert!(!raw.normalizes());
        // Long exposure of constant 0.5 over 4 slots -> 2.0 unnormalized.
        assert!(raw
            .sense(&clip)
            .unwrap()
            .approx_eq(&Tensor::full(&[8, 8], 2.0), 1e-6));
        let mut wrapped = HardwareSensor::from_sensor(CeSensor::new(8, 8, mask).unwrap());
        assert!(wrapped
            .sense(&clip)
            .unwrap()
            .approx_eq(&Tensor::full(&[8, 8], 0.5), 1e-6));
    }

    #[test]
    fn sense_batch_stacks_sequential_captures() {
        let mut rng = StdRng::seed_from_u64(12);
        let mask = patterns::random(4, (4, 4), 0.5, &mut rng).unwrap();
        let clips = Tensor::rand_uniform(&mut rng, &[3, 4, 8, 8], 0.0, 1.0);
        let mut hw = HardwareSensor::new(8, 8, mask).unwrap();
        let batch = hw.sense_batch(&clips).unwrap();
        assert_eq!(batch.shape(), &[3, 8, 8]);
        for b in 0..3 {
            let single = hw.sense(&clips.index_axis(0, b).unwrap()).unwrap();
            assert!(batch.index_axis(0, b).unwrap().approx_eq(&single, 0.0));
        }
        assert!(hw.sense(&Tensor::zeros(&[4, 4, 4])).is_err());
    }
}
