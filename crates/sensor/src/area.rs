//! Area model of the CE augmentation (paper Sec. V, "Area Overhead").
//!
//! Anchored to the paper's synthesis results:
//!
//! * per-pixel bottom-die logic (DFF + `M6`/`M7` drivers): **30 µm²** in
//!   TSMC 65 nm, **3.2 µm²** scaled to 22 nm via DeepScale;
//! * the shift-register design needs a **constant 4 wires** per tile
//!   (`pattern in`, `pattern clk`, `pattern transfer`, `pattern reset`)
//!   regardless of tile size;
//! * the broadcast alternative needs **2N wires per pixel** for an
//!   `N x N` tile, with synthesized wire footprints of 2.24 µm x 2.24 µm
//!   at `N = 8` growing to 3.92 µm x 3.92 µm at `N = 14` — exceeding the
//!   state-of-the-art APS pixel.

/// Per-pixel CE logic area at 65 nm (paper synthesis result), in µm².
pub const LOGIC_AREA_65NM_UM2: f64 = 30.0;

/// Per-pixel CE logic area scaled to 22 nm with DeepScale, in µm².
pub const LOGIC_AREA_22NM_UM2: f64 = 3.2;

/// Side length of a state-of-the-art stacked APS pixel, in µm. Chosen
/// between the paper's N=8 (2.24 µm) and N=14 (3.92 µm) wire footprints so
/// that the broadcast design crosses the APS area before N = 14, as the
/// paper reports.
pub const APS_PIXEL_SIDE_UM: f64 = 3.5;

/// Wires per pixel needed by the shift-register design (constant).
pub const SHIFT_REGISTER_WIRES: usize = 4;

/// Scales the 65 nm logic area to an arbitrary `node_nm` using the
/// DeepScale-calibrated anchors (quadratic in feature size between the
/// published 65 nm and 22 nm points, extrapolated with the same law).
///
/// # Panics
///
/// Panics for a non-positive node.
pub fn logic_area_um2(node_nm: f64) -> f64 {
    assert!(node_nm > 0.0, "process node must be positive");
    // Fit area = k * node^alpha through (65, 30) and (22, 3.2).
    let alpha = (LOGIC_AREA_65NM_UM2 / LOGIC_AREA_22NM_UM2).ln() / (65.0f64 / 22.0).ln();
    let k = LOGIC_AREA_65NM_UM2 / 65.0f64.powf(alpha);
    k * node_nm.powf(alpha)
}

/// Wires per pixel needed by the broadcast alternative for an `n x n`
/// tile.
pub fn broadcast_wires(n: usize) -> usize {
    2 * n
}

/// Side length (µm) of the broadcast design's per-pixel wire footprint for
/// an `n x n` tile, interpolated from the paper's synthesized anchors
/// (N=8 → 2.24 µm, N=14 → 3.92 µm; the growth is linear in wire count).
pub fn broadcast_wire_side_um(n: usize) -> f64 {
    0.28 * n as f64
}

/// Whether the broadcast design's wire footprint exceeds the
/// state-of-the-art APS pixel for tile size `n`.
pub fn broadcast_exceeds_aps(n: usize) -> bool {
    broadcast_wire_side_um(n) > APS_PIXEL_SIDE_UM
}

/// The smallest tile size at which the broadcast design no longer fits
/// under the APS pixel (the shift-register design never hits this wall).
pub fn broadcast_crossover_tile() -> usize {
    (1..)
        .find(|&n| broadcast_exceeds_aps(n))
        .expect("growth is unbounded")
}

/// One row of the Sec. V area comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct AreaRow {
    /// Tile size `n` (tiles are `n x n`).
    pub tile: usize,
    /// Wires per pixel, shift-register design.
    pub shift_register_wires: usize,
    /// Wires per pixel, broadcast design.
    pub broadcast_wires: usize,
    /// Broadcast wire footprint side in µm.
    pub broadcast_wire_side_um: f64,
    /// Whether the broadcast footprint exceeds the APS pixel.
    pub broadcast_exceeds_aps: bool,
}

/// Builds the area-scaling table over `tiles` (experiment E5).
pub fn area_table(tiles: &[usize]) -> Vec<AreaRow> {
    tiles
        .iter()
        .map(|&n| AreaRow {
            tile: n,
            shift_register_wires: SHIFT_REGISTER_WIRES,
            broadcast_wires: broadcast_wires(n),
            broadcast_wire_side_um: broadcast_wire_side_um(n),
            broadcast_exceeds_aps: broadcast_exceeds_aps(n),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logic_area_matches_paper_anchors() {
        assert!((logic_area_um2(65.0) - 30.0).abs() < 1e-9);
        assert!((logic_area_um2(22.0) - 3.2).abs() < 1e-9);
        // Monotone in node size.
        assert!(logic_area_um2(45.0) < 30.0);
        assert!(logic_area_um2(45.0) > 3.2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn logic_area_rejects_zero_node() {
        let _ = logic_area_um2(0.0);
    }

    #[test]
    fn wire_side_matches_paper_anchors() {
        assert!((broadcast_wire_side_um(8) - 2.24).abs() < 1e-9);
        assert!((broadcast_wire_side_um(14) - 3.92).abs() < 1e-9);
    }

    #[test]
    fn broadcast_wire_count_is_2n() {
        assert_eq!(broadcast_wires(8), 16);
        assert_eq!(broadcast_wires(14), 28);
    }

    #[test]
    fn shift_register_wiring_is_constant() {
        for row in area_table(&[2, 8, 14, 32]) {
            assert_eq!(row.shift_register_wires, 4);
        }
    }

    #[test]
    fn crossover_between_paper_anchors() {
        // At N=8 the broadcast design fits; by N=14 it exceeds the APS.
        assert!(!broadcast_exceeds_aps(8));
        assert!(broadcast_exceeds_aps(14));
        let x = broadcast_crossover_tile();
        assert!((9..=14).contains(&x), "crossover at {x}");
    }

    #[test]
    fn area_table_rows_are_ordered() {
        let table = area_table(&[4, 8, 12, 16]);
        assert_eq!(table.len(), 4);
        for w in table.windows(2) {
            assert!(w[1].broadcast_wire_side_um > w[0].broadcast_wire_side_um);
        }
    }
}
