//! Behavioral simulation and area model of the stacked coded-exposure
//! image sensor (SnapPix paper, Sec. V).
//!
//! The paper augments a stacked CMOS image sensor so coded exposure runs
//! *inside* the pixel array: the top die keeps a (modified) 4T active
//! pixel, the bottom die adds one D-flip-flop per pixel wired as a
//! per-tile shift register, and two extra transistors (`M6` pattern-reset,
//! `M7` pattern-transfer) let the buffered CE bit gate the photodiode
//! reset and the charge transfer. This crate reproduces that design at the
//! behavioral level:
//!
//! * [`CePixel`] — charge-domain state machine of one pixel (PD, FD, DFF,
//!   switches `M1`–`M7`);
//! * [`CeSensor`] — a full array with per-tile shift-register pattern
//!   streaming, the slot protocol of Sec. V, and cycle accounting;
//! * [`Readout`] — shot noise, read noise and ADC quantization;
//! * [`HardwareSensor`] — the deployment-path [`snappix_ce::Sense`]
//!   backend: capture + readout + normalization behind the same trait as
//!   the algorithmic encoder, so inference pipelines swap paths via
//!   generics;
//! * [`area`] — the area model: per-pixel logic (30 µm² at 65 nm, 3.2 µm²
//!   scaled to 22 nm) and the wire-area comparison against the broadcast
//!   alternative (2N wires/pixel), regenerating the Sec. V numbers.
//!
//! The central correctness claim — the hardware computes exactly Eqn. 1 —
//! is property-tested against [`snappix_ce::encode`].
//!
//! # Examples
//!
//! ```
//! use snappix_sensor::CeSensor;
//! use snappix_ce::patterns;
//! use snappix_tensor::Tensor;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mask = patterns::long_exposure(4, (4, 4))?;
//! let mut sensor = CeSensor::new(8, 8, mask)?;
//! let video = Tensor::full(&[4, 8, 8], 0.1);
//! let analog = sensor.capture(&video)?;
//! assert_eq!(analog.shape(), &[8, 8]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod area;
mod array;
mod error;
mod hardware;
mod pixel;
mod readout;

pub use array::{CaptureStats, CeSensor};
pub use error::SensorError;
pub use hardware::HardwareSensor;
pub use pixel::CePixel;
pub use readout::{Readout, ReadoutConfig};

/// Convenient result alias used across this crate.
pub type Result<T> = std::result::Result<T, SensorError>;
