//! Charge-domain behavioral model of one CE pixel (paper Fig. 5).
//!
//! The pixel is a 4T active pixel whose photodiode (PD) reset and charge
//! transfer are gated by a locally stored CE bit:
//!
//! * `M1` resets the PD — but only when `M6` (pattern-reset) is pulsed
//!   *and* the DFF holds `1`;
//! * `M3` transfers PD charge to the floating diffusion (FD) — but only
//!   when `M7` (pattern-transfer) is pulsed *and* the DFF holds `1`;
//! * `M2` resets the FD at the start of a capture;
//! * `M4`/`M5` read the FD out when the row is selected.
//!
//! The PD integrates incident light continuously; the protocol in
//! [`crate::CeSensor`] arranges the reset/transfer pulses so the FD
//! accumulates exactly the light from the slots whose CE bit was `1` —
//! i.e. the pixel physically computes one term of Eqn. 1.

/// Behavioral state of a single coded-exposure pixel.
///
/// Charge is modeled in normalized units: exposing to irradiance `e` for a
/// full slot adds `e` to the PD.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CePixel {
    /// Photodiode charge (normalized).
    pd: f32,
    /// Floating-diffusion charge (normalized) — what readout sees.
    fd: f32,
    /// The one-bit CE pattern buffered in the bottom-die DFF.
    dff: bool,
    /// Whether the DFF is currently power-gated (it ignores clocks while
    /// gated; the paper gates it between pattern uses to save power).
    gated: bool,
}

impl CePixel {
    /// A pixel with empty wells and a cleared, ungated DFF.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current photodiode charge.
    pub fn pd_charge(&self) -> f32 {
        self.pd
    }

    /// Current floating-diffusion charge (the value readout digitizes).
    pub fn fd_charge(&self) -> f32 {
        self.fd
    }

    /// The CE bit currently buffered in the DFF.
    pub fn dff_bit(&self) -> bool {
        self.dff
    }

    /// Whether the DFF is power-gated.
    pub fn is_gated(&self) -> bool {
        self.gated
    }

    /// Clocks the shift register: captures `bit_in` into this pixel's DFF
    /// and returns the previous bit (which feeds the next pixel's
    /// `pattern in` wire). A power-gated DFF holds its state and forwards
    /// its held bit.
    pub fn shift(&mut self, bit_in: bool) -> bool {
        let out = self.dff;
        if !self.gated {
            self.dff = bit_in;
        }
        out
    }

    /// Power-gates or ungates the DFF.
    pub fn set_gated(&mut self, gated: bool) {
        self.gated = gated;
    }

    /// `M2`: resets the floating diffusion (start of a capture).
    pub fn reset_fd(&mut self) {
        self.fd = 0.0;
    }

    /// `M6` pulse: if the DFF holds `1`, the PD is reset through `M1`
    /// (clearing any charge accumulated in skipped slots) so the coming
    /// slot integrates from zero. A `0` bit leaves the PD untouched.
    pub fn pattern_reset(&mut self) {
        if self.dff {
            self.pd = 0.0;
        }
    }

    /// Exposes the pixel: the PD integrates `irradiance * dt`
    /// unconditionally (photodiodes cannot be switched off).
    pub fn expose(&mut self, irradiance: f32, dt: f32) {
        self.pd += irradiance * dt;
    }

    /// `M7` pulse: if the DFF holds `1`, the PD charge moves to the FD
    /// through `M3` (FD accumulates, PD empties). A `0` bit blocks the
    /// transfer entirely.
    pub fn pattern_transfer(&mut self) {
        if self.dff {
            self.fd += self.pd;
            self.pd = 0.0;
        }
    }

    /// `M4`/`M5`: reads the FD as a voltage (non-destructive in this
    /// model; correlated double sampling is folded into the readout noise
    /// model).
    pub fn read(&self) -> f32 {
        self.fd
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_pixel_is_empty() {
        let p = CePixel::new();
        assert_eq!(p.pd_charge(), 0.0);
        assert_eq!(p.fd_charge(), 0.0);
        assert!(!p.dff_bit());
        assert!(!p.is_gated());
    }

    #[test]
    fn exposure_integrates_into_pd_only() {
        let mut p = CePixel::new();
        p.expose(0.5, 1.0);
        p.expose(0.25, 2.0);
        assert_eq!(p.pd_charge(), 1.0);
        assert_eq!(p.fd_charge(), 0.0);
    }

    #[test]
    fn transfer_requires_set_bit() {
        let mut p = CePixel::new();
        p.expose(1.0, 1.0);
        p.pattern_transfer(); // bit is 0: blocked
        assert_eq!(p.fd_charge(), 0.0);
        assert_eq!(p.pd_charge(), 1.0);
        p.shift(true);
        p.pattern_transfer(); // bit is 1: moves charge
        assert_eq!(p.fd_charge(), 1.0);
        assert_eq!(p.pd_charge(), 0.0);
    }

    #[test]
    fn pattern_reset_clears_pd_only_when_bit_set() {
        let mut p = CePixel::new();
        p.expose(1.0, 1.0);
        p.pattern_reset(); // bit 0: PD keeps stale charge
        assert_eq!(p.pd_charge(), 1.0);
        p.shift(true);
        p.pattern_reset(); // bit 1: PD cleared for fresh slot
        assert_eq!(p.pd_charge(), 0.0);
    }

    #[test]
    fn skipped_slot_charge_never_reaches_fd() {
        // Slot A: bit 0 (skip), slot B: bit 1 (expose). The stale slot-A
        // charge must be flushed by the pattern reset, so FD sees only B.
        let mut p = CePixel::new();
        // Slot A, bit 0.
        p.shift(false);
        p.pattern_reset();
        p.expose(10.0, 1.0); // bright stale light
        p.pattern_transfer(); // blocked
                              // Slot B, bit 1.
        p.shift(true);
        p.pattern_reset(); // flushes the stale 10.0
        p.expose(0.5, 1.0);
        p.pattern_transfer();
        assert_eq!(p.fd_charge(), 0.5);
    }

    #[test]
    fn consecutive_exposed_slots_accumulate_in_fd() {
        let mut p = CePixel::new();
        for light in [0.25, 0.5] {
            p.shift(true);
            p.pattern_reset();
            p.expose(light, 1.0);
            p.pattern_transfer();
        }
        assert_eq!(p.fd_charge(), 0.75);
    }

    #[test]
    fn shift_register_forwards_previous_bit() {
        let mut p = CePixel::new();
        assert!(!p.shift(true)); // old bit was 0
        assert!(p.shift(false)); // old bit was 1
        assert!(!p.dff_bit());
    }

    #[test]
    fn gated_dff_ignores_clocks_but_forwards_state() {
        let mut p = CePixel::new();
        p.shift(true);
        p.set_gated(true);
        assert!(p.shift(false), "gated DFF must forward held bit");
        assert!(p.dff_bit(), "gated DFF must not capture");
        p.set_gated(false);
        p.shift(false);
        assert!(!p.dff_bit());
    }

    #[test]
    fn fd_reset_clears_accumulated_charge() {
        let mut p = CePixel::new();
        p.shift(true);
        p.pattern_reset();
        p.expose(1.0, 1.0);
        p.pattern_transfer();
        p.reset_fd();
        assert_eq!(p.read(), 0.0);
    }
}
