//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the real `criterion`
//! cannot be fetched. This crate provides the API subset the SnapPix bench
//! suite uses — [`Criterion`], [`BenchmarkGroup`], [`Bencher`],
//! [`BenchmarkId`] and the [`criterion_group!`]/[`criterion_main!`] macros —
//! backed by a simple wall-clock harness:
//!
//! * each benchmark is warmed up once, then timed over enough iterations to
//!   fill a small measurement window, and the mean time per iteration is
//!   printed;
//! * `--test` mode (what `cargo bench -- --test` and CI smoke runs use)
//!   executes every benchmark body exactly once and skips measurement;
//! * no statistics, plots, or saved baselines — recording baselines is done
//!   by redirecting stdout (see BENCHMARKS.md at the workspace root).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Entry point: owns run mode and accumulates results.
pub struct Criterion {
    test_mode: bool,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- --test` forwards `--test` to the harness binary;
        // honour it (and a CRITERION_TEST env var) by running each body once.
        let test_mode =
            std::env::args().any(|a| a == "--test") || std::env::var_os("CRITERION_TEST").is_some();
        Criterion {
            test_mode,
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let sample_size = self.default_sample_size;
        self.run_one(id, sample_size, &mut f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, label: &str, sample_size: usize, f: &mut F) {
        let mut bencher = Bencher {
            test_mode: self.test_mode,
            sample_size,
            total: Duration::ZERO,
            iterations: 0,
        };
        f(&mut bencher);
        if self.test_mode {
            println!("  {label}: ok (test mode)");
        } else if bencher.iterations > 0 {
            let mean = bencher.total.as_secs_f64() / bencher.iterations as f64;
            println!(
                "  {label}: {} per iter ({} iters)",
                format_time(mean),
                bencher.iterations
            );
        } else {
            println!("  {label}: no iterations recorded");
        }
    }
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured samples (here: minimum iteration count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Benchmarks a function under this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        let sample_size = self
            .sample_size
            .unwrap_or(self.criterion.default_sample_size);
        self.criterion.run_one(&label, sample_size, &mut f);
        self
    }

    /// Benchmarks a function with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        let sample_size = self
            .sample_size
            .unwrap_or(self.criterion.default_sample_size);
        self.criterion
            .run_one(&label, sample_size, &mut |b| f(b, input));
        self
    }

    /// Ends the group (kept for API parity; all work already happened).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter rendering.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Conversion of `&str` / `String` / [`BenchmarkId`] into a display label.
pub trait IntoBenchmarkId {
    /// The label under which results are reported.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Times a closure over repeated iterations.
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    total: Duration,
    iterations: u64,
}

impl Bencher {
    /// Runs `routine` repeatedly and records the mean wall-clock time.
    ///
    /// In `--test` mode the routine runs exactly once, untimed.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Warmup (also primes caches and allocator).
        black_box(routine());
        // Measure at least `sample_size` iterations, and keep going until a
        // ~200 ms window is filled so fast routines get stable means.
        let window = Duration::from_millis(200);
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(routine());
            iters += 1;
            if iters >= self.sample_size as u64 && start.elapsed() >= window {
                break;
            }
            if iters >= 100_000 {
                break;
            }
        }
        self.total = start.elapsed();
        self.iterations = iters;
    }
}

/// Declares a group of benchmark functions callable from `criterion_main!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion {
            test_mode: true,
            default_sample_size: 10,
        };
        let mut ran = 0u32;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert_eq!(ran, 1);
    }

    #[test]
    fn group_applies_sample_size_and_input() {
        let mut c = Criterion {
            test_mode: true,
            default_sample_size: 10,
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        let mut seen = 0usize;
        group.bench_with_input(BenchmarkId::new("f", 3usize), &3usize, |b, &n| {
            b.iter(|| seen = n)
        });
        group.finish();
        assert_eq!(seen, 3);
    }

    #[test]
    fn format_time_scales() {
        assert!(format_time(2.0).ends_with(" s"));
        assert!(format_time(2e-3).ends_with(" ms"));
        assert!(format_time(2e-6).ends_with(" µs"));
        assert!(format_time(2e-9).ends_with(" ns"));
    }
}
