//! Distributions, mirroring `rand::distr` (rand 0.9).

use crate::{RngCore, StandardSample};

/// Error returned by fallible distribution constructors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    what: &'static str,
}

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "invalid distribution parameters: {}", self.what)
    }
}

impl std::error::Error for Error {}

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draws one value from the distribution.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Types uniformly samplable from a range; mirrors rand's `SampleUniform`.
///
/// A **single generic** `SampleRange` impl is built on this trait (as in
/// real rand) so integer/float literal inference unifies through
/// `random_range(0..2)`-style calls.
pub trait SampleUniform: Copy {
    /// Validates `[low, high)` as a sampling range.
    fn validate(low: Self, high: Self) -> Result<(), Error>;
    /// Validates `[low, high]` as a sampling range.
    fn validate_inclusive(low: Self, high: Self) -> Result<(), Error>;
    /// Draws one value uniformly from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    /// Draws one value uniformly from `[low, high]`.
    fn sample_range_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

/// Draws a value in `[0, span)`; `span == 0` encodes the full 2^128 range
/// (unreachable from the integer impls below, which cap at 2^64 + 1 spans).
fn sample_below<R: RngCore + ?Sized>(span: u128, rng: &mut R) -> u128 {
    debug_assert!(span > 0);
    if span <= u64::MAX as u128 {
        let span64 = span as u64;
        // Rejection sampling to kill modulo bias.
        let zone = u64::MAX - (u64::MAX - span64 + 1) % span64;
        loop {
            let v = rng.next_u64();
            if v <= zone {
                return (v % span64) as u128;
            }
        }
    } else {
        let v = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        v % span
    }
}

macro_rules! sample_uniform_int {
    ($($t:ty),+) => {$(
        impl SampleUniform for $t {
            fn validate(low: Self, high: Self) -> Result<(), Error> {
                if low >= high {
                    return Err(Error { what: "low >= high" });
                }
                Ok(())
            }

            fn validate_inclusive(low: Self, high: Self) -> Result<(), Error> {
                if low > high {
                    return Err(Error { what: "low > high" });
                }
                Ok(())
            }

            fn sample_range<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                let span = (high as i128 - low as i128) as u128;
                (low as i128 + sample_below(span, rng) as i128) as $t
            }

            fn sample_range_inclusive<R: RngCore + ?Sized>(
                low: Self,
                high: Self,
                rng: &mut R,
            ) -> Self {
                let span = (high as i128 - low as i128) as u128 + 1;
                (low as i128 + sample_below(span, rng) as i128) as $t
            }
        }
    )+};
}

sample_uniform_int!(usize, u8, u16, u32, u64, isize, i8, i16, i32, i64);

macro_rules! sample_uniform_float {
    ($($t:ty),+) => {$(
        impl SampleUniform for $t {
            fn validate(low: Self, high: Self) -> Result<(), Error> {
                if !low.is_finite() || !high.is_finite() {
                    return Err(Error { what: "non-finite bound" });
                }
                if low >= high {
                    return Err(Error { what: "low >= high" });
                }
                Ok(())
            }

            fn validate_inclusive(low: Self, high: Self) -> Result<(), Error> {
                if !low.is_finite() || !high.is_finite() {
                    return Err(Error { what: "non-finite bound" });
                }
                if low > high {
                    return Err(Error { what: "low > high" });
                }
                Ok(())
            }

            fn sample_range<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                let u: $t = StandardSample::sample_standard(rng);
                let v = low + u * (high - low);
                // Guard against f.p. rounding landing exactly on `high`.
                if v < high { v } else { low }
            }

            fn sample_range_inclusive<R: RngCore + ?Sized>(
                low: Self,
                high: Self,
                rng: &mut R,
            ) -> Self {
                if low == high {
                    return low;
                }
                let u: $t = StandardSample::sample_standard(rng);
                low + u * (high - low)
            }
        }
    )+};
}

sample_uniform_float!(f32, f64);

/// Uniform distribution over a half-open range `[low, high)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform<X> {
    low: X,
    high: X,
}

impl<X: SampleUniform> Uniform<X> {
    /// Builds a uniform distribution over `[low, high)`.
    ///
    /// Errors if the range is empty (or, for floats, has a non-finite
    /// bound), matching rand 0.9's fallible constructor.
    pub fn new(low: X, high: X) -> Result<Self, Error> {
        X::validate(low, high)?;
        Ok(Uniform { low, high })
    }
}

impl<X: SampleUniform> Distribution<X> for Uniform<X> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> X {
        X::sample_range(self.low, self.high, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn uniform_rejects_bad_bounds() {
        assert!(Uniform::<f32>::new(1.0, 1.0).is_err());
        assert!(Uniform::<f32>::new(2.0, 1.0).is_err());
        assert!(Uniform::<f32>::new(f32::NAN, 1.0).is_err());
        assert!(Uniform::<f32>::new(0.0, f32::INFINITY).is_err());
        assert!(Uniform::<usize>::new(3, 3).is_err());
    }

    #[test]
    fn uniform_float_stays_in_bounds() {
        let d = Uniform::new(-2.0f32, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = d.sample(&mut rng);
            assert!((-2.0..3.0).contains(&v));
        }
    }

    #[test]
    fn signed_ranges_cover_negatives() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut saw_negative = false;
        for _ in 0..1000 {
            let v = i32::sample_range(-5, 5, &mut rng);
            assert!((-5..5).contains(&v));
            saw_negative |= v < 0;
        }
        assert!(saw_negative);
    }

    #[test]
    fn full_u64_inclusive_range_does_not_panic() {
        let mut rng = StdRng::seed_from_u64(3);
        let _ = u64::sample_range_inclusive(0, u64::MAX, &mut rng);
    }
}
