//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no network access and no
//! pre-populated cargo registry, so the real `rand` cannot be fetched. This
//! crate reimplements exactly the subset of the rand 0.9 API the SnapPix
//! workspace uses, with the same module paths and trait shapes, so swapping
//! in the real crate later is a one-line `Cargo.toml` change:
//!
//! * [`rngs::StdRng`] — a seedable, deterministic generator
//!   (xoshiro256++ seeded via SplitMix64 rather than ChaCha12; statistically
//!   solid for simulation, **not** cryptographically secure);
//! * [`SeedableRng::seed_from_u64`] — the only constructor the workspace
//!   uses, so every experiment stays bit-reproducible;
//! * [`Rng::random`] / [`Rng::random_range`] for `f32`/`f64` and the integer
//!   types, over half-open and inclusive ranges;
//! * [`distr::Uniform`] + [`distr::Distribution`] (fallible `Uniform::new`,
//!   as in rand 0.9).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distr;
pub mod rngs;

/// A random number generator: the low-level source of random `u64`s.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random value generation, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (uniform `[0, 1)` for floats, full range for integers).
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples a value uniformly from the given range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Deterministically builds the generator from a single `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable by [`Rng::random`].
pub trait StandardSample {
    /// Draws one value from the type's standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits -> uniform in [0, 1) with full f32 mantissa precision.
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::random_range`] can sample from.
///
/// Implemented **generically** over [`distr::SampleUniform`] (one impl per
/// range shape, as in real rand) so type inference unifies unsuffixed
/// literals like `random_range(0..2)` with the surrounding expression.
pub trait SampleRange<T> {
    /// Draws one value uniformly from `self`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: distr::SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::validate(self.start, self.end).expect("cannot sample empty range");
        T::sample_range(self.start, self.end, rng)
    }
}

impl<T: distr::SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        T::validate_inclusive(start, end).expect("cannot sample empty range");
        T::sample_range_inclusive(start, end, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn float_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&v));
        }
    }

    #[test]
    fn int_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.random_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let mut seen_incl = [false; 3];
        for _ in 0..1000 {
            seen_incl[rng.random_range(0usize..=2)] = true;
        }
        assert!(seen_incl.iter().all(|&s| s));
    }

    #[test]
    fn standard_f32_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(11);
        let mean: f32 = (0..10_000).map(|_| rng.random::<f32>()).sum::<f32>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean was {mean}");
    }
}
