//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the real `proptest`
//! cannot be fetched. This crate reimplements the subset of its API the
//! SnapPix workspace uses, keeping module paths (`proptest::prelude`,
//! `proptest::strategy`, `proptest::test_runner`, `prop::collection`) and
//! macro shapes identical so the real crate can be swapped back in later.
//!
//! Differences from real proptest, by design:
//!
//! * **no shrinking** — a failing case reports its inputs but is not
//!   minimized;
//! * **always deterministic** — the runner is seeded from a fixed constant
//!   (plus the case index), so CI failures always reproduce locally;
//! * fewer strategies: numeric ranges, `prop::collection::vec` and
//!   [`strategy::Strategy::prop_map`] are what the workspace needs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Mirror of proptest's `prop` re-export module, so `prop::collection::vec`
/// resolves from the prelude.
pub mod prop {
    pub use crate::collection;
}

/// One-stop imports for property tests.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Strategy, ValueTree};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests.
///
/// Supports the block form used across the workspace: an optional
/// `#![proptest_config(..)]` inner attribute followed by `#[test]`
/// functions whose arguments are drawn from strategies with `name in strat`
/// syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $cfg; $($rest)*);
    };
    (@impl $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut runner = $crate::test_runner::TestRunner::for_case(case);
                $(
                    let $arg = {
                        let tree = $crate::strategy::Strategy::new_tree(&($strat), &mut runner)
                            .expect("strategy generation");
                        $crate::strategy::ValueTree::current(&tree)
                    };
                )+
                let result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(err) = result {
                    ::core::panic!(
                        "proptest {} failed at case {}/{}: {}",
                        ::core::stringify!($name),
                        case,
                        config.cases,
                        err
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (with
/// the formatted message) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: {}", ::core::stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Asserts two expressions are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: {:?} == {:?}", l, r),
            ));
        }
    }};
}

/// Asserts two expressions are unequal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: {:?} != {:?}", l, r),
            ));
        }
    }};
}
