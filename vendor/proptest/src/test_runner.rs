//! Test execution: configuration, the RNG-bearing runner, and case errors.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Base seed for all runners; chosen once so failures reproduce everywhere.
const BASE_SEED: u64 = 0x5aa9_9157_c0de_d001;

/// Reason a strategy failed to produce a value.
pub type Reason = String;

/// Configuration for a `proptest!` block.
///
/// Real proptest defaults to 256 cases; this stand-in defaults to 64 to
/// keep `cargo test -q` fast on training-heavy properties.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Carries the RNG that strategies draw from.
#[derive(Debug, Clone)]
pub struct TestRunner {
    pub(crate) rng: StdRng,
}

impl TestRunner {
    /// A runner with a fixed seed, for reproducible value generation inside
    /// test bodies.
    pub fn deterministic() -> Self {
        TestRunner {
            rng: StdRng::seed_from_u64(BASE_SEED),
        }
    }

    /// The runner used for the `case`-th generated case of a property.
    pub fn for_case(case: u32) -> Self {
        TestRunner {
            rng: StdRng::seed_from_u64(
                BASE_SEED ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
            ),
        }
    }
}

/// A failed property case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl core::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}
