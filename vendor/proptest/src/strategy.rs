//! Strategies: recipes for generating values of a type.

use crate::test_runner::{Reason, TestRunner};
use rand::Rng;

/// A generated value (real proptest also records how to shrink it; this
/// stand-in does not shrink).
pub trait ValueTree {
    /// The type of value this tree holds.
    type Value;

    /// The generated value.
    fn current(&self) -> Self::Value;
}

/// A tree holding an already-computed value.
#[derive(Debug, Clone)]
pub struct JustTree<T>(pub(crate) T);

impl<T: Clone> ValueTree for JustTree<T> {
    type Value = T;

    fn current(&self) -> T {
        self.0.clone()
    }
}

/// A recipe for generating values of type `Self::Value`.
pub trait Strategy {
    /// The type of value generated.
    type Value;
    /// The tree type produced by [`Strategy::new_tree`].
    type Tree: ValueTree<Value = Self::Value>;

    /// Generates one value tree using the runner's RNG.
    fn new_tree(&self, runner: &mut TestRunner) -> Result<Self::Tree, Reason>;

    /// Maps generated values through `f`.
    fn prop_map<O: Clone, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    pub(crate) source: S,
    pub(crate) f: F,
}

impl<S: Strategy, O: Clone, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    type Tree = JustTree<O>;

    fn new_tree(&self, runner: &mut TestRunner) -> Result<Self::Tree, Reason> {
        let inner = self.source.new_tree(runner)?;
        Ok(JustTree((self.f)(inner.current())))
    }
}

macro_rules! range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            type Tree = JustTree<$t>;

            fn new_tree(&self, runner: &mut TestRunner) -> Result<Self::Tree, Reason> {
                if self.start >= self.end {
                    return Err(format!("empty range {:?}", self));
                }
                Ok(JustTree(runner.rng.random_range(self.clone())))
            }
        }
    )+};
}

range_strategy!(usize, u8, u16, u32, u64, f32, f64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_generate_in_bounds() {
        let mut runner = TestRunner::deterministic();
        for _ in 0..100 {
            let v = (3usize..7).new_tree(&mut runner).unwrap().current();
            assert!((3..7).contains(&v));
            let f = (-1.0f32..1.0).new_tree(&mut runner).unwrap().current();
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn empty_range_is_rejected() {
        let mut runner = TestRunner::deterministic();
        assert!((5usize..5).new_tree(&mut runner).is_err());
    }

    #[test]
    fn prop_map_applies() {
        let mut runner = TestRunner::deterministic();
        let v = (1usize..5)
            .prop_map(|x| x * 10)
            .new_tree(&mut runner)
            .unwrap()
            .current();
        assert!(v >= 10 && v < 50);
    }
}
