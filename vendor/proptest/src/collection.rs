//! Collection strategies (`prop::collection::vec`).

use crate::strategy::{JustTree, Strategy, ValueTree};
use crate::test_runner::{Reason, TestRunner};
use rand::Rng;

/// Lengths acceptable to [`vec`]: a fixed `usize` or a `usize` range.
pub trait SizeRange {
    /// Picks a concrete length.
    fn pick(&self, runner: &mut TestRunner) -> Result<usize, Reason>;
}

impl SizeRange for usize {
    fn pick(&self, _runner: &mut TestRunner) -> Result<usize, Reason> {
        Ok(*self)
    }
}

impl SizeRange for core::ops::Range<usize> {
    fn pick(&self, runner: &mut TestRunner) -> Result<usize, Reason> {
        if self.start >= self.end {
            return Err(format!("empty size range {self:?}"));
        }
        Ok(runner.rng.random_range(self.clone()))
    }
}

/// Strategy for `Vec<S::Value>` with lengths drawn from `size`.
pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
    VecStrategy { element, size }
}

/// Strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S, Z> {
    element: S,
    size: Z,
}

impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z>
where
    S::Value: Clone,
{
    type Value = Vec<S::Value>;
    type Tree = JustTree<Vec<S::Value>>;

    fn new_tree(&self, runner: &mut TestRunner) -> Result<Self::Tree, Reason> {
        let len = self.size.pick(runner)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.element.new_tree(runner)?.current());
        }
        Ok(JustTree(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_and_ranged_lengths() {
        let mut runner = TestRunner::deterministic();
        let fixed = vec(0.0f32..1.0, 5).new_tree(&mut runner).unwrap().current();
        assert_eq!(fixed.len(), 5);
        for _ in 0..50 {
            let ranged = vec(1usize..5, 1..4)
                .new_tree(&mut runner)
                .unwrap()
                .current();
            assert!((1..4).contains(&ranged.len()));
            assert!(ranged.iter().all(|&x| (1..5).contains(&x)));
        }
    }
}
