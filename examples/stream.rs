//! Real-time multi-stream inference end to end: four synthetic camera
//! feeds whose true action changes segment by segment, streamed through
//! one shared server with per-stream overload policies, temporal
//! smoothing, and label-change events.
//!
//! Run with `cargo run --release --example stream`. Environment knobs:
//! `SNAPPIX_THREADS` bounds the machine parallelism the server divides
//! among its replicas.

use snappix_stream::prelude::*;
use std::time::Duration;

const T: usize = 8;
const HW: usize = 16;
const CLASSES: usize = 10;
const STREAMS: usize = 4;
const SEGMENTS: usize = 3;
const SEGMENT_FRAMES: usize = 24;

fn main() -> Result<(), snappix::Error> {
    // A small co-designed model at the paper's 16x16 edge scale.
    let mask = patterns::long_exposure(T, (8, 8))?;
    let model = SnapPixAr::new(VitConfig::snappix_s(HW, HW, CLASSES), mask)?;

    // One shared server: two worker replicas, cross-stream dynamic
    // batching, and a deliberately small queue so overload policies can
    // matter under bursts.
    let server = Server::builder(Pipeline::builder(model))
        .with_workers(2)
        .with_queue_depth(16)
        .with_batch_policy(BatchPolicy::new(8, Duration::from_millis(1)))
        .build()?;
    println!(
        "serving {} workers x {} threads; streaming {STREAMS} cameras, window {T} hop 4",
        server.workers(),
        server.worker_threads(),
    );

    // Each stream gets a different overload personality; all smooth with
    // a majority vote over the last 3 windows and need 2 consecutive
    // windows to confirm a label change.
    let policies = [
        OverloadPolicy::Block,
        OverloadPolicy::SkipWindow,
        OverloadPolicy::DropOldest { pending: 2 },
        OverloadPolicy::SkipWindow,
    ];
    let mut runner =
        StreamRunner::new(&server).with_pacing(Pacing::fps(120.0).map_err(snappix::Error::from)?);
    let mut truths = Vec::new();
    for (i, &overload) in policies.iter().enumerate().take(STREAMS) {
        // Different per-stream seeds: shift the sample range via config.
        let mut config = ssv2_like(SEGMENT_FRAMES, HW, HW);
        config.seed = config.seed.wrapping_add(1000 * i as u64);
        let source = SyntheticSource::new(config, SEGMENTS);
        truths.push(
            (0..SEGMENTS)
                .map(|s| source.segment_label(s))
                .collect::<Vec<_>>(),
        );
        runner.add_stream(
            source,
            SessionConfig::new(T, 4)
                .with_smoothing(Smoothing::Majority { k: 3 })
                .with_hysteresis(2)
                .with_overload(overload),
        );
    }

    let report = runner.run()?;

    println!("\n--- events ---");
    for (stream, truth) in report.streams.iter().zip(&truths) {
        println!("stream {} (true segment labels {truth:?}):", stream.id);
        if stream.events.is_empty() {
            println!("  (no label settled — all windows shed?)");
        }
        for event in &stream.events {
            println!("  {event}");
        }
    }

    println!("\n--- per-stream stats ---");
    println!("{report}");
    println!(
        "\nserver side: {} batches, mean batch {:.2}",
        server.stats().batches,
        server.stats().mean_batch_size()
    );
    Ok(())
}
