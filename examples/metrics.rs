//! Metrics walkthrough: serve a burst of classify requests through the
//! gateway, then scrape `GET /metrics` in both exposition formats —
//! the classic Prometheus text a plain `curl` gets, and the
//! OpenMetrics rendering (trace exemplars on latency buckets, `# EOF`
//! trailer) a scraper selects with its `Accept` header. Finishes with
//! the property the page is built on: log-linear histogram snapshots
//! merge exactly, so per-replica latency distributions fold into a
//! fleet-wide one without losing a single sample.
//!
//! Run with `cargo run --release --example metrics`. See
//! `docs/METRICS.md` for the full family reference and
//! `docs/OBSERVABILITY.md` for how metrics and traces fit together.

use rand::{rngs::StdRng, SeedableRng};
use snappix_gateway::prelude::*;
use snappix_metrics::HistogramOpts as StandaloneOpts;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

const T: usize = 8;
const HW: usize = 16;
const CLASSES: usize = 5;
const CLIENTS: usize = 8;
const CLIPS_PER_CLIENT: usize = 4;

/// One request/response round trip on a keep-alive connection.
fn roundtrip(reader: &mut BufReader<TcpStream>, head: &str, body: &[u8]) -> String {
    let stream = reader.get_mut();
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(body).expect("write body");
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    assert!(status_line.contains("200"), "unexpected: {status_line}");
    let mut length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
            length = v.trim().parse().expect("numeric content-length");
        }
    }
    let mut body = vec![0u8; length];
    reader.read_exact(&mut body).expect("body");
    String::from_utf8(body).expect("utf-8 body")
}

fn scrape(addr: std::net::SocketAddr, accept: Option<&str>) -> String {
    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream);
    let head = match accept {
        Some(a) => format!("GET /metrics HTTP/1.1\r\naccept: {a}\r\n\r\n"),
        None => "GET /metrics HTTP/1.1\r\n\r\n".to_string(),
    };
    roundtrip(&mut reader, &head, &[])
}

fn main() -> Result<(), snappix::Error> {
    let mask = patterns::long_exposure(T, (8, 8))?;
    let model = SnapPixAr::new(VitConfig::snappix_s(HW, HW, CLASSES), mask)?;
    let server = Server::builder(Pipeline::builder(model))
        .with_workers(2)
        .with_queue_depth(CLIENTS * CLIPS_PER_CLIENT)
        .with_batch_policy(BatchPolicy::new(8, Duration::from_millis(2)))
        .with_tracer(Tracer::new()) // trace ids feed the exemplars
        .build()?;
    let gateway = Gateway::builder(server)
        .with_max_connections(CLIENTS + 8)
        .bind()
        .map_err(snappix::Error::from)?;
    let addr = gateway.local_addr();

    // A concurrent burst, each request stamped with a caller-chosen
    // trace id (the gateway would mint one otherwise).
    let mut rng = StdRng::seed_from_u64(23);
    let clips: Vec<Vec<u8>> = (0..CLIENTS * CLIPS_PER_CLIENT)
        .map(|_| {
            Tensor::rand_uniform(&mut rng, &[T, HW, HW], 0.0, 1.0)
                .as_slice()
                .iter()
                .flat_map(|v| v.to_le_bytes())
                .collect()
        })
        .collect();
    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let clips = &clips;
            scope.spawn(move || {
                let stream = TcpStream::connect(addr).expect("connect");
                let mut reader = BufReader::new(stream);
                for i in 0..CLIPS_PER_CLIENT {
                    let n = client * CLIPS_PER_CLIENT + i;
                    let body = &clips[n];
                    let head = format!(
                        "POST /v1/classify HTTP/1.1\r\nx-snappix-trace: {}\r\n\
                         content-length: {}\r\n\r\n",
                        n + 1,
                        body.len()
                    );
                    roundtrip(&mut reader, &head, body);
                }
            });
        }
    });

    // Classic text format: what `curl .../metrics` gets.
    let classic = scrape(addr, None);
    println!("--- classic scrape (excerpt) ---");
    for line in classic.lines().filter(|l| {
        l.starts_with("snappix_server_requests_")
            || l.starts_with("snappix_server_queue_latency_seconds_count")
            || l.starts_with("snappix_build_info")
    }) {
        println!("{line}");
    }

    // OpenMetrics: same cells, plus exemplars linking latency buckets
    // to the traces that landed in them, and the # EOF trailer.
    let open = scrape(addr, Some("application/openmetrics-text"));
    println!("\n--- OpenMetrics latency buckets with exemplars ---");
    for line in open.lines().filter(|l| l.contains("# {trace_id=")).take(6) {
        println!("{line}");
    }
    assert!(open.ends_with("# EOF\n"));

    // The headline histogram property: snapshots merge exactly. Two
    // "replicas" record disjoint latency samples; merging their
    // snapshots is indistinguishable from one replica seeing all of it.
    let a = snappix_metrics::Histogram::standalone(StandaloneOpts::nanos());
    let b = snappix_metrics::Histogram::standalone(StandaloneOpts::nanos());
    for us in 1..=400u64 {
        if us % 2 == 0 {
            a.record(us * 1_000);
        } else {
            b.record(us * 1_000);
        }
    }
    let merged = a.snapshot().merge(&b.snapshot());
    assert_eq!(merged.count, 400, "merge loses no samples");
    println!(
        "\nmerged replicas: {} samples, p50 ≈ {:.0} µs, p99 ≈ {:.0} µs (≤1.6% off exact)",
        merged.count,
        merged.quantile(0.5) as f64 / 1_000.0,
        merged.quantile(0.99) as f64 / 1_000.0,
    );

    let (gateway_stats, server_stats) = gateway.shutdown();
    println!(
        "\nserved {} requests, server completed {}",
        gateway_stats.requests_total(),
        server_stats.completed
    );
    Ok(())
}
