//! Quickstart: the full SnapPix pipeline in ~60 lines.
//!
//! Learns a decorrelated exposure mask, trains the co-designed ViT on
//! coded images, then deploys through the simulated sensor hardware.
//!
//! Run with: `cargo run --release --example quickstart`

use snappix::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const T: usize = 8; // exposure slots (the paper uses 16)
    const HW: usize = 16; // frame side in pixels
    const CLASSES: usize = 8;

    println!("== SnapPix quickstart ==");
    let data = Dataset::new(ucf101_like(T, HW, HW), 100);
    let (train, test) = data.split(0.8);
    println!(
        "dataset: {} ({} train / {} test clips of {}x{}x{})",
        data.config().name,
        train.len(),
        test.len(),
        T,
        HW,
        HW
    );

    // 1. Task-agnostic mask learning by decorrelation (paper Sec. III).
    let mut trainer = DecorrelationTrainer::new(DecorrelationConfig {
        slots: T,
        tile: (8, 8),
        batch_size: 6,
        ..DecorrelationConfig::default()
    })?;
    let learned = trainer.train(&train, 20)?;
    println!(
        "learned mask: {:.0}% open, residual correlation {:.3} \
         (loss {:.4} -> {:.4})",
        100.0 * learned.mask.open_fraction(),
        learned.final_correlation,
        learned.loss_history.first().copied().unwrap_or(f32::NAN),
        learned.loss_history.last().copied().unwrap_or(f32::NAN),
    );

    // 2. Train the CE-optimized ViT on coded images (paper Sec. IV).
    let mut model = SnapPixAr::new(VitConfig::snappix_s(HW, HW, CLASSES), learned.mask.clone())?;
    let report = train_action_model(&mut model, &train, &TrainOptions::experiment(10))?;
    println!(
        "AR training: {} steps, final loss {:.3}",
        report.steps,
        report.final_loss()
    );
    let acc = evaluate_accuracy(&model, &test)?;
    println!(
        "algorithmic-path accuracy: {acc:.1}% (chance {:.1}%)",
        100.0 / CLASSES as f32
    );

    // 3. Deploy: a batched inference engine over the charge-domain sensor
    //    simulation; the report combines accuracy with the energy model.
    let mut pipeline = Pipeline::builder(model)
        .with_hardware_sensor(ReadoutConfig::default())?
        .with_max_pending(8)
        .build()?;
    let report = evaluate_deployment(&mut pipeline, &test, Wireless::PassiveWifi)?;
    println!(
        "hardware-path accuracy: {:.1}% over {} clips",
        report.accuracy(),
        report.clips
    );
    println!(
        "per capture: {} pattern-clock cycles, {} pixels read (vs {} for video read-out)",
        report.pattern_clock_cycles_per_capture,
        report.pixels_read_per_capture,
        report.pixels_read_per_capture * T as u64,
    );
    println!(
        "edge energy: {:.2} uJ per capture ({:.1}x saving over conventional), \
         {:.2} uJ per correct classification",
        report.energy_uj_per_capture,
        report.energy_saving(),
        report.energy_uj_per_correct(),
    );
    Ok(())
}
