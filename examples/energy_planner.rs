//! Edge-deployment energy planner: reproduces the Sec. VI-D analysis and
//! sweeps the design space (slots, links, CE overhead).
//!
//! Run with: `cargo run --release --example energy_planner`

use snappix::prelude::*;
use snappix_energy::{EdgeGpuScenario, GpuModelClass, JetsonXavierModel};

fn main() {
    let model = EnergyModel::paper();
    let pixels = 112 * 112;

    println!("== edge-server scenarios (paper Sec. VI-D) ==");
    println!(
        "{:<22} {:>12} {:>14} {:>10}",
        "link", "conv (uJ)", "snappix (uJ)", "saving"
    );
    for (name, wireless) in [
        ("passive WiFi (~10m)", Wireless::PassiveWifi),
        ("LoRa backscatter", Wireless::LoraBackscatter),
    ] {
        let s = Scenario {
            frame_pixels: pixels,
            slots: 16,
            wireless,
        };
        let conv = model.conventional_energy(&s).total_pj() / 1e6;
        let snap = model.snappix_energy(&s).total_pj() / 1e6;
        println!(
            "{name:<22} {conv:>12.1} {snap:>14.1} {:>9.1}x",
            model.edge_energy_saving(&s)
        );
    }

    println!("\n== saving vs number of exposure slots (passive WiFi) ==");
    for slots in [2usize, 4, 8, 16, 32, 64] {
        let s = Scenario {
            frame_pixels: pixels,
            slots,
            wireless: Wireless::PassiveWifi,
        };
        println!("T = {slots:>3}: {:>5.1}x", model.edge_energy_saving(&s));
    }

    println!("\n== edge-GPU scenario (Jetson-Xavier-class) ==");
    let gpu = EdgeGpuScenario {
        sensing: Scenario {
            frame_pixels: pixels,
            slots: 16,
            wireless: Wireless::PassiveWifi,
        },
        gpu: JetsonXavierModel::paper(),
    };
    for (name, class) in [
        ("SnapPix-S", GpuModelClass::SnapPixS),
        ("SnapPix-B", GpuModelClass::SnapPixB),
        ("VideoMAEv2-ST", GpuModelClass::VideoMaeSt),
        ("C3D", GpuModelClass::C3d),
    ] {
        println!(
            "{name:<16} {:>8.1} mJ/inference",
            gpu.total_pj(&model, class) / 1e9
        );
    }
    println!(
        "SnapPix-S saving: {:.1}x vs VideoMAEv2-ST, {:.1}x vs C3D \
         (paper: 1.4x, 4.5x)",
        gpu.saving(&model, GpuModelClass::SnapPixS, GpuModelClass::VideoMaeSt),
        gpu.saving(&model, GpuModelClass::SnapPixS, GpuModelClass::C3d),
    );

    println!("\n== sensitivity: CE overhead per pixel-slot ==");
    for overhead in [0.0f64, 4.5, 9.0, 18.0, 36.0] {
        let custom = EnergyModel {
            ce_overhead_pj_per_pixel_slot: overhead,
            ..EnergyModel::paper()
        };
        let s = Scenario {
            frame_pixels: pixels,
            slots: 16,
            wireless: Wireless::PassiveWifi,
        };
        println!(
            "{overhead:>5.1} pJ/px/slot -> saving {:>5.2}x",
            custom.edge_energy_saving(&s)
        );
    }
}
