//! Fleet-scale simulation end to end: sixteen battery-and-harvest
//! sensor nodes multiplexed over one shared server by a four-thread
//! driver pool, with the duty-cycle ladder trading inference for
//! lifetime as budgets drain.
//!
//! Run with `cargo run --release --example fleet`. The run is seeded and
//! replayable: every number printed here (except wall time) is identical
//! across runs, driver-pool sizes, and `SNAPPIX_THREADS` settings.

use snappix_fleet::prelude::*;
use std::time::Duration;

const T: usize = 8;
const HW: usize = 16;
const CLASSES: usize = 10;
const NODES: usize = 16;
const FRAMES: usize = 120;

fn main() -> Result<(), snappix::Error> {
    // A small co-designed model at the paper's 16x16 edge scale, served
    // with two worker replicas and cross-fleet dynamic batching.
    let mask = patterns::long_exposure(T, (8, 8))?;
    let model = SnapPixAr::new(VitConfig::snappix_s(HW, HW, CLASSES), mask)?;
    let server = Server::builder(Pipeline::builder(model))
        .with_workers(2)
        .with_batch_policy(BatchPolicy::new(8, Duration::from_millis(1)))
        .build()?;

    // Price one window under the paper's model so budgets can be sized
    // in "number of inferences" instead of raw picojoules.
    let cost = EnergyModel::paper()
        .snappix_energy(&Scenario {
            frame_pixels: HW * HW,
            slots: T,
            wireless: Wireless::PassiveWifi,
        })
        .total_pj();
    println!(
        "one inferred window costs {:.0} pJ (paper model, {}x{} px, {T} slots, passive WiFi)",
        cost, HW, HW
    );

    // Sixteen nodes in four energy personalities: mains-powered,
    // battery-only, battery + strong harvest, battery + weak harvest.
    let mut sim = FleetSim::new(&server).with_drivers(4);
    let data = Dataset::new(ssv2_like(FRAMES, HW, HW), NODES);
    for i in 0..NODES {
        let (budget, personality) = match i % 4 {
            0 => (EnergyBudget::unbounded(), "mains"),
            1 => (EnergyBudget::new(cost * 8.0), "battery"),
            2 => (
                EnergyBudget::new(cost * 8.0).with_harvest(cost * 20.0),
                "battery+sun",
            ),
            _ => (
                EnergyBudget::new(cost * 8.0).with_harvest(cost * 4.0),
                "battery+shade",
            ),
        };
        let id = sim.add_node(
            ReplaySource::new(data.sample(i).video),
            NodeConfig::new(T, 4)
                .with_fps(30.0)
                .with_budget(budget)
                .with_smoothing(Smoothing::Majority { k: 3 })
                .with_hysteresis(2)
                .with_sleep_cost(cost * 0.01),
        )?;
        println!("node {id:>2}: {personality}");
    }

    let report = sim.run()?;

    println!("\n-- duty-cycle ladder transitions --");
    for event in &report.trace {
        if matches!(event.kind, TraceKind::Rung { .. }) {
            println!("{event}");
        }
    }

    println!("\n-- per-node accounting --");
    for node in &report.nodes {
        println!("node {:>2}: {}", node.id, node.stats);
    }

    println!("\n-- budget survival curve --");
    for (t, alive) in report.survival_curve(6) {
        println!(
            "  t = {:>5.1} virtual s: {:>3.0}% of nodes not yet asleep",
            t as f64 / 1e6,
            alive * 100.0
        );
    }

    println!("\n-- fleet aggregate --");
    println!("{}", report.stats);
    println!(
        "wall time {:.0} ms for {:.1} virtual s ({} events traced); ledgers conserved: {}",
        report.wall.as_secs_f64() * 1e3,
        report.stats.virtual_us as f64 / 1e6,
        report.trace.len(),
        report.check_conserved(),
    );

    let stats = server.shutdown();
    println!(
        "server: {} requests completed in {} batches (mean batch {:.2})",
        stats.completed,
        stats.batches,
        stats.mean_batch_size()
    );
    Ok(())
}
