//! The `.spx` weight artifact end to end: train a small model, save a
//! legacy `.snpx` checkpoint, convert it to a sealed `.spx` artifact,
//! reload through both paths, prove the answers are bit-for-bit equal,
//! and show the memory win of sharing one read-only payload across a
//! fleet of replicas.
//!
//! Run with `cargo run --release --example artifact`.

use snappix_serve::prelude::*;
use std::time::Duration;

const T: usize = 4;
const HW: usize = 16;
const CLASSES: usize = 10; // ssv2_like's class count
const REPLICAS: usize = 4;

fn model() -> Result<SnapPixAr, snappix::Error> {
    let mask = patterns::long_exposure(T, (8, 8))?;
    Ok(SnapPixAr::new(VitConfig::snappix_s(HW, HW, CLASSES), mask)?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Train-lite: a couple of epochs on a procedural dataset is
    //    enough to make these weights "a checkpoint worth deploying".
    let data = Dataset::new(ssv2_like(T, HW, HW), 40);
    let mut trained = model()?;
    let report = train_action_model(&mut trained, &data, &TrainOptions::experiment(2))?;
    println!(
        "trained {} steps, final loss {:.4}",
        report.steps,
        report.final_loss()
    );

    // 2. Save the legacy stream, then convert it to a sealed artifact.
    let base = std::env::temp_dir().join(format!("snappix_example_{}", std::process::id()));
    let snpx = base.with_extension("snpx");
    let spx = base.with_extension("spx");
    save_params(trained.store(), &snpx)?;
    convert_params_to_artifact(&snpx, &spx)?;
    println!(
        "checkpoint: {} B legacy -> {} B artifact (64 B header + table + 64-aligned payload + checksum)",
        std::fs::metadata(&snpx)?.len(),
        std::fs::metadata(&spx)?.len(),
    );

    // 3. Reload through both paths and classify the same batch.
    let mut legacy_model = model()?;
    load_params(legacy_model.store_mut(), &snpx)?;
    let mut legacy = Pipeline::builder(legacy_model).build()?;
    let mut artifact = Pipeline::builder(model()?).with_artifact(&spx)?.build()?;
    let batch = data.batch(0, 8);
    let a = legacy.infer(&batch.videos)?;
    let b = artifact.infer(&batch.videos)?;
    assert!(
        a.logits.approx_eq(&b.logits, 0.0),
        "artifact answers must be bit-for-bit the load_params answers"
    );
    println!("both load paths predict {:?} (bit-for-bit equal)", b.labels);

    // 4. The point of the artifact: replicas share one payload buffer.
    let replicas = Pipeline::builder(model()?)
        .with_artifact(&spx)?
        .build_replicas(REPLICAS)?;
    let resident = resident_weight_bytes(&replicas);
    let naive: usize = replicas.iter().map(Pipeline::weight_bytes).sum();
    println!(
        "{REPLICAS} replicas: {resident} B resident vs {naive} B if deep-copied ({:.2}x saved)",
        naive as f64 / resident as f64
    );

    // 5. The same sharing through the serving layer, on the stats page.
    let server = Server::builder(Pipeline::builder(model()?))
        .with_artifact(&spx)?
        .with_workers(REPLICAS)
        .with_batch_policy(BatchPolicy::new(4, Duration::from_millis(2)))
        .build()?;
    for i in 0..8 {
        server.classify(data.sample(i).video.frames())?;
    }
    let stats = server.shutdown();
    println!("\n--- server telemetry ---\n{stats}");

    std::fs::remove_file(snpx).ok();
    std::fs::remove_file(spx).ok();
    Ok(())
}
