//! Action recognition: decorrelated vs. baseline exposure patterns.
//!
//! A miniature of the paper's Fig. 6 comparison — train the same
//! CE-optimized ViT on coded images produced by different task-agnostic
//! patterns and compare accuracy.
//!
//! Run with: `cargo run --release --example action_recognition`

use rand::{rngs::StdRng, SeedableRng};
use snappix::prelude::*;

const T: usize = 8;
const HW: usize = 24;
const CLASSES: usize = 10;

fn train_and_score(
    name: &str,
    mask: ExposureMask,
    train: &Dataset,
    test: &Dataset,
) -> Result<(), Box<dyn std::error::Error>> {
    let rho = measure_pattern_correlation(train, &mask, 16)?;
    let mut model = SnapPixAr::new(VitConfig::snappix_s(HW, HW, CLASSES), mask)?;
    train_action_model(&mut model, train, &TrainOptions::experiment(8))?;
    let acc = evaluate_accuracy(&model, test)?;
    println!("{name:<16} correlation {rho:.3}   accuracy {acc:5.1}%");
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== task-agnostic exposure patterns on the AR task ==");
    let data = Dataset::new(ssv2_like(T, HW, HW), 150);
    let (train, test) = data.split(0.8);
    let mut rng = StdRng::seed_from_u64(123);

    // Learned decorrelated pattern.
    let mut trainer = DecorrelationTrainer::new(DecorrelationConfig {
        slots: T,
        tile: (8, 8),
        batch_size: 6,
        ..DecorrelationConfig::default()
    })?;
    let learned = trainer.train(&train, 25)?;
    train_and_score("decorrelated", learned.mask, &train, &test)?;

    // Builtin baselines from the paper's Fig. 6.
    train_and_score(
        "sparse-random",
        patterns::sparse_random(T, (8, 8), &mut rng)?,
        &train,
        &test,
    )?;
    train_and_score(
        "random",
        patterns::random(T, (8, 8), 0.5, &mut rng)?,
        &train,
        &test,
    )?;
    train_and_score("short", patterns::short_exposure(T, (8, 8), 4)?, &train, &test)?;
    train_and_score("long", patterns::long_exposure(T, (8, 8))?, &train, &test)?;
    Ok(())
}
