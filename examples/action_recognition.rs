//! Action recognition: decorrelated vs. baseline exposure patterns.
//!
//! A miniature of the paper's Fig. 6 comparison — train the same
//! CE-optimized ViT on coded images produced by different task-agnostic
//! patterns and compare accuracy.
//!
//! Run with: `cargo run --release --example action_recognition`
//!
//! By default this runs a CI-sized comparison (16x16 frames, short
//! training). Pass `--full` (or set `SNAPPIX_FULL=1`) for the larger
//! 24x24 run.

use rand::{rngs::StdRng, SeedableRng};
use snappix::prelude::*;

const T: usize = 8;

/// Scale knobs: CI-sized by default, `--full` for the larger run.
struct RunScale {
    hw: usize,
    clips: usize,
    epochs: usize,
}

impl RunScale {
    fn from_args() -> Self {
        let full = std::env::args().any(|a| a == "--full")
            || std::env::var("SNAPPIX_FULL").is_ok_and(|v| !v.is_empty() && v != "0");
        if full {
            RunScale {
                hw: 24,
                clips: 150,
                epochs: 8,
            }
        } else {
            RunScale {
                hw: 16,
                clips: 80,
                epochs: 6,
            }
        }
    }
}

fn train_and_score(
    name: &str,
    mask: ExposureMask,
    train: &Dataset,
    test: &Dataset,
    scale: &RunScale,
) -> Result<(), Box<dyn std::error::Error>> {
    let rho = measure_pattern_correlation(train, &mask, 16)?;
    let classes = train.num_classes();
    let mut model = SnapPixAr::new(VitConfig::snappix_s(scale.hw, scale.hw, classes), mask)?;
    train_action_model(&mut model, train, &TrainOptions::experiment(scale.epochs))?;
    let acc = evaluate_accuracy(&model, test)?;
    println!("{name:<16} correlation {rho:.3}   accuracy {acc:5.1}%");
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = RunScale::from_args();
    println!("== task-agnostic exposure patterns on the AR task ==");
    let data = Dataset::new(ssv2_like(T, scale.hw, scale.hw), scale.clips);
    let (train, test) = data.split(0.8);
    let mut rng = StdRng::seed_from_u64(123);

    // Learned decorrelated pattern.
    let mut trainer = DecorrelationTrainer::new(DecorrelationConfig {
        slots: T,
        tile: (8, 8),
        batch_size: 6,
        ..DecorrelationConfig::default()
    })?;
    let learned = trainer.train(&train, 25)?;
    train_and_score("decorrelated", learned.mask, &train, &test, &scale)?;

    // Builtin baselines from the paper's Fig. 6.
    train_and_score(
        "sparse-random",
        patterns::sparse_random(T, (8, 8), &mut rng)?,
        &train,
        &test,
        &scale,
    )?;
    train_and_score(
        "random",
        patterns::random(T, (8, 8), 0.5, &mut rng)?,
        &train,
        &test,
        &scale,
    )?;
    train_and_score(
        "short",
        patterns::short_exposure(T, (8, 8), 4)?,
        &train,
        &test,
        &scale,
    )?;
    train_and_score(
        "long",
        patterns::long_exposure(T, (8, 8))?,
        &train,
        &test,
        &scale,
    )?;
    Ok(())
}
