//! Sensor hardware walkthrough: streams a clip through the charge-domain
//! CE pixel array, verifies it implements Eqn. 1, shows the capture
//! statistics, readout noise, and the Sec. V area comparison.
//!
//! Run with: `cargo run --release --example sensor_sim`

use rand::{rngs::StdRng, SeedableRng};
use snappix::prelude::*;
use snappix_sensor::area;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const T: usize = 16;
    const HW: usize = 32;
    let mut rng = StdRng::seed_from_u64(7);

    println!("== coded-exposure sensor simulation ==");
    let mask = patterns::random(T, (8, 8), 0.5, &mut rng)?;
    println!(
        "mask: {} slots, tile {:?}, {:.0}% open",
        mask.num_slots(),
        mask.tile(),
        100.0 * mask.open_fraction()
    );

    let data = Dataset::new(ssv2_like(T, HW, HW), 1);
    let clip = data.sample(0).video;

    // Capture through the pixel-level protocol.
    let mut sensor = CeSensor::new(HW, HW, mask.clone())?;
    let analog = sensor.capture(clip.frames())?;
    let stats = sensor.stats();
    println!("\ncapture protocol accounting:");
    println!("  pattern-clock cycles : {}", stats.pattern_clock_cycles);
    println!("  M6 reset pulses      : {}", stats.pattern_reset_pulses);
    println!("  M7 transfer pulses   : {}", stats.pattern_transfer_pulses);
    println!("  exposure slots       : {}", stats.exposure_slots);
    println!(
        "  pixels read out      : {} (a video camera reads {})",
        stats.pixels_read,
        stats.pixels_read * T as u64
    );

    // Equivalence with the algorithmic codec.
    let reference = encode(clip.frames(), &mask)?;
    let max_err = analog.sub(&reference)?.abs().max();
    println!("\nhardware vs Eqn. 1: max |error| = {max_err:.2e}");

    // Digitize with and without noise.
    let mut clean = Readout::new(ReadoutConfig::noiseless(8, T as f32));
    let mut noisy = Readout::new(ReadoutConfig::default());
    let d_clean = clean.digitize(&analog);
    let d_noisy = noisy.digitize(&analog);
    println!(
        "8-bit ADC PSNR: clean {:.1} dB, with shot+read noise {:.1} dB",
        psnr(
            &analog.scale(1.0 / T as f32),
            &d_clean.scale(1.0 / T as f32)
        )?,
        psnr(
            &analog.scale(1.0 / T as f32),
            &d_noisy.scale(1.0 / T as f32)
        )?,
    );

    // Sec. V area model.
    println!("\n== area model (Sec. V) ==");
    println!(
        "per-pixel CE logic: {:.1} um^2 @65nm -> {:.1} um^2 @22nm",
        area::LOGIC_AREA_65NM_UM2,
        area::LOGIC_AREA_22NM_UM2
    );
    println!(
        "{:<6} {:>18} {:>16} {:>14} {:>10}",
        "tile", "shift-reg wires", "broadcast wires", "wire side um", "fits APS?"
    );
    for row in area::area_table(&[4, 8, 10, 12, 14]) {
        println!(
            "{:<6} {:>18} {:>16} {:>14.2} {:>10}",
            format!("{0}x{0}", row.tile),
            row.shift_register_wires,
            row.broadcast_wires,
            row.broadcast_wire_side_um,
            if row.broadcast_exceeds_aps {
                "no"
            } else {
                "yes"
            }
        );
    }
    println!(
        "broadcast design stops fitting under the APS at tile {0}x{0}; \
         the shift-register design never does",
        area::broadcast_crossover_tile()
    );
    Ok(())
}
