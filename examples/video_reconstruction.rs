//! Video reconstruction (the paper's REC task): recover all frames of a
//! clip from a single coded image, report PSNR, and render a small ASCII
//! preview of the result.
//!
//! Run with: `cargo run --release --example video_reconstruction`

use snappix::prelude::*;

const T: usize = 8;
const HW: usize = 16;

fn ascii_frame(frame: &Tensor) -> String {
    const RAMP: &[u8] = b" .:-=+*#%@";
    let (h, w) = (frame.shape()[0], frame.shape()[1]);
    let mut out = String::with_capacity(h * (w + 1));
    for y in 0..h {
        for x in 0..w {
            let v = frame.get(&[y, x]).unwrap_or(0.0).clamp(0.0, 1.0);
            let idx = (v * (RAMP.len() - 1) as f32).round() as usize;
            out.push(RAMP[idx] as char);
        }
        out.push('\n');
    }
    out
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== video reconstruction from one coded image ==");
    let data = Dataset::new(ssv2_like(T, HW, HW), 64);
    let (train, test) = data.split(0.9);

    let mask = patterns::short_exposure(T, (8, 8), 2)?;
    let mut rec = SnapPixRec::new(VitConfig::snappix_b(HW, HW, 10), mask, T, 3e-3)?;
    println!("training REC model ({T} frames from 1 coded image)...");
    let history = rec.train(&train, 120, 6)?;
    println!(
        "MSE loss {:.4} -> {:.4}",
        history.first().copied().unwrap_or(f32::NAN),
        history.last().copied().unwrap_or(f32::NAN)
    );

    let db = rec.evaluate_psnr(&test, test.len())?;
    println!("test PSNR: {db:.2} dB (paper band for T=16 @112x112: 26-28.4 dB)");

    // Show one reconstruction next to its ground truth.
    let sample = test.sample(0);
    let batch = sample.video.frames().reshape(&[1, T, HW, HW])?;
    let recon = rec.reconstruct(&batch)?.clamp(0.0, 1.0);
    let truth = sample.video.frame(T / 2)?;
    let predicted = recon.index_axis(0, 0)?.index_axis(0, T / 2)?;
    println!("\nground-truth frame {}:", T / 2);
    println!("{}", ascii_frame(&truth));
    println!("reconstructed frame {}:", T / 2);
    println!("{}", ascii_frame(&predicted));
    Ok(())
}
