//! Multi-client serving end to end: spawn a `Server` over pipeline
//! replicas, hammer it from concurrent client threads (some cooperative,
//! some load-shedding, some with deadlines), and print the telemetry.
//!
//! Run with `cargo run --release --example serve`. Environment knobs:
//! `SNAPPIX_THREADS` bounds the machine parallelism the server divides
//! among its replicas.

use rand::{rngs::StdRng, SeedableRng};
use snappix_serve::prelude::*;
use std::time::Duration;

const T: usize = 8;
const HW: usize = 16;
const CLASSES: usize = 5;
const CLIENTS: usize = 6;
const CLIPS_PER_CLIENT: usize = 8;

fn main() -> Result<(), snappix::Error> {
    // A small co-designed model at the paper's 16x16 edge scale.
    let mask = patterns::long_exposure(T, (8, 8))?;
    let model = SnapPixAr::new(VitConfig::snappix_s(HW, HW, CLASSES), mask)?;

    // Two worker replicas, batches of up to 8 clips, at most 2 ms of
    // batching delay, and a deliberately small admission queue so the
    // shedding path is visible under burst load.
    let server = Server::builder(Pipeline::builder(model))
        .with_workers(2)
        .with_queue_depth(16)
        .with_batch_policy(BatchPolicy::new(8, Duration::from_millis(2)))
        .build()?;
    println!(
        "serving with {} workers x {} threads, queue depth {}, max batch {}",
        server.workers(),
        server.worker_threads(),
        server.queue_capacity(),
        server.policy().max_batch,
    );

    let mut rng = StdRng::seed_from_u64(7);
    let clips: Vec<Tensor> = (0..CLIENTS * CLIPS_PER_CLIENT)
        .map(|_| Tensor::rand_uniform(&mut rng, &[T, HW, HW], 0.0, 1.0))
        .collect();

    // Clients share the server by reference; each runs its own policy.
    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let server = &server;
            let clips = &clips;
            scope.spawn(move || {
                let mut labels = Vec::new();
                let mut shed = 0usize;
                let mut expired = 0usize;
                for i in 0..CLIPS_PER_CLIENT {
                    let clip = &clips[client * CLIPS_PER_CLIENT + i];
                    let outcome = match client % 3 {
                        // Cooperative client: block on backpressure.
                        0 => server.submit(clip),
                        // Impatient client: shed and move on when full.
                        1 => server.try_submit(clip),
                        // Real-time client: answers are useless after 50 ms.
                        _ => server.submit_within(clip, Duration::from_millis(50)),
                    };
                    match outcome.map(Ticket::wait) {
                        Ok(Ok(prediction)) => labels.push(prediction.label),
                        Ok(Err(ServeError::DeadlineExpired { .. })) => expired += 1,
                        Err(ServeError::Overloaded { .. }) => shed += 1,
                        Ok(Err(e)) | Err(e) => panic!("client {client}: {e}"),
                    }
                }
                println!(
                    "client {client}: {} answers {labels:?}, {shed} shed, {expired} expired",
                    labels.len()
                );
            });
        }
    });

    let stats = server.shutdown();
    println!("\n--- server telemetry ---\n{stats}");
    println!(
        "mean batch size {:.2} across {} batches",
        stats.mean_batch_size(),
        stats.batches
    );
    Ok(())
}
