//! Tracing walkthrough: serve a burst of classify requests through the
//! gateway with a live [`Tracer`], dump the whole trace as Chrome
//! trace-event JSON (load it in Perfetto or `chrome://tracing`), and
//! print the slowest request's stage-by-stage breakdown — the question
//! counters can't answer: *where did that one request's time go?*
//!
//! Run with `cargo run --release --example trace`. The trace lands in
//! the system temp directory; see `docs/TRACING.md` for the span
//! taxonomy.

use rand::{rngs::StdRng, SeedableRng};
use snappix_gateway::prelude::*;
use snappix_trace::SpanRecord;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

const T: usize = 8;
const HW: usize = 16;
const CLASSES: usize = 5;
const CLIENTS: usize = 16;
const CLIPS_PER_CLIENT: usize = 4;

/// One classify round trip on a keep-alive connection.
fn classify(reader: &mut BufReader<TcpStream>, body: &[u8]) {
    let head = format!(
        "POST /v1/classify HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
        body.len()
    );
    let stream = reader.get_mut();
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(body).expect("write body");
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    assert!(status_line.contains("200"), "unexpected: {status_line}");
    let mut length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
            length = v.trim().parse().expect("numeric content-length");
        }
    }
    let mut body = vec![0u8; length];
    reader.read_exact(&mut body).expect("body");
}

fn main() -> Result<(), snappix::Error> {
    let mask = patterns::long_exposure(T, (8, 8))?;
    let model = SnapPixAr::new(VitConfig::snappix_s(HW, HW, CLASSES), mask)?;
    let server = Server::builder(Pipeline::builder(model))
        .with_workers(2)
        .with_queue_depth(CLIENTS * CLIPS_PER_CLIENT)
        .with_batch_policy(BatchPolicy::new(8, Duration::from_millis(2)))
        .with_tracer(Tracer::new())
        .build()?;
    let gateway = Gateway::builder(server)
        .with_max_connections(CLIENTS + 8)
        .bind()
        .map_err(snappix::Error::from)?;
    let addr = gateway.local_addr();

    let mut rng = StdRng::seed_from_u64(23);
    let clips: Vec<Vec<u8>> = (0..CLIENTS * CLIPS_PER_CLIENT)
        .map(|_| {
            Tensor::rand_uniform(&mut rng, &[T, HW, HW], 0.0, 1.0)
                .as_slice()
                .iter()
                .flat_map(|v| v.to_le_bytes())
                .collect()
        })
        .collect();

    let started = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let clips = &clips;
            scope.spawn(move || {
                let stream = TcpStream::connect(addr).expect("connect");
                stream
                    .set_read_timeout(Some(Duration::from_secs(120)))
                    .expect("timeout");
                let mut conn = BufReader::new(stream);
                for i in 0..CLIPS_PER_CLIENT {
                    classify(&mut conn, &clips[client * CLIPS_PER_CLIENT + i]);
                }
            });
        }
    });
    let elapsed = started.elapsed();
    let total = CLIENTS * CLIPS_PER_CLIENT;
    println!(
        "{total} clips through http://{addr} in {elapsed:.2?} \
         ({:.0} req/s)",
        total as f64 / elapsed.as_secs_f64()
    );

    // `respond` spans land just after the response bytes do; give the
    // connection threads a beat to finish their bookkeeping.
    std::thread::sleep(Duration::from_millis(100));
    let snapshot = gateway.server().tracer().snapshot();

    // Dump the whole trace for Perfetto / chrome://tracing.
    let path = std::env::temp_dir().join("snappix-trace.json");
    std::fs::write(&path, snapshot.to_chrome_json()).expect("write trace.json");
    println!(
        "{} spans across {} lanes -> {} (open in https://ui.perfetto.dev)",
        snapshot.len(),
        snapshot.lanes.len(),
        path.display()
    );

    // The slowest request, stage by stage. The request span brackets
    // the whole server-side lifetime; its children say where the time
    // went, and the compute span's `batch` arg links to the shared
    // forward pass (whose sense/forward/readout children are the
    // pipeline's own stage timings).
    let requests: Vec<&SpanRecord> = snapshot
        .records
        .iter()
        .filter(|r| r.name == "request")
        .collect();
    assert_eq!(requests.len(), total, "every request left a span");
    let slowest = requests
        .iter()
        .max_by_key(|r| r.duration_us())
        .expect("at least one request");
    println!(
        "\nslowest request: trace {} took {} us",
        slowest.trace_id,
        slowest.duration_us()
    );
    let mut children: Vec<&SpanRecord> = snapshot
        .records
        .iter()
        .filter(|r| r.trace_id == slowest.trace_id && r.parent == slowest.span_id)
        .collect();
    children.sort_by_key(|r| r.start_us);
    for child in children {
        println!(
            "  {:<12} {:>8} us  ({:.0}% of the request)",
            child.name,
            child.duration_us(),
            100.0 * child.duration_us() as f64 / slowest.duration_us().max(1) as f64
        );
    }

    let (_, server_stats) = gateway.shutdown();
    server_stats.debug_assert_conserved();
    println!("\naggregate {}", server_stats.profile);
    Ok(())
}
