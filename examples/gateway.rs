//! Gateway load test: stand up the HTTP front-end over a replicated
//! server, hammer it over loopback TCP from hundreds of simulated
//! clients (mixed policies: patient, deadline-bound, and metrics
//! scrapers riding the same wire), and print both layers' telemetry.
//!
//! Run with `cargo run --release --example gateway`. Environment knobs:
//! `SNAPPIX_THREADS` bounds the machine parallelism the server divides
//! among its replicas. The numbers in `BENCHMARKS.md` come from this
//! example.

use rand::{rngs::StdRng, SeedableRng};
use snappix_gateway::prelude::*;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

const T: usize = 8;
const HW: usize = 16;
const CLASSES: usize = 5;
const CLIENTS: usize = 200;
const CLIPS_PER_CLIENT: usize = 3;

/// One round trip on an existing keep-alive connection; returns the
/// status code and the body.
fn roundtrip(
    reader: &mut BufReader<TcpStream>,
    method: &str,
    path: &str,
    extra: &str,
    body: &[u8],
) -> (u16, String) {
    let head = format!(
        "{method} {path} HTTP/1.1\r\ncontent-length: {}\r\n{extra}\r\n",
        body.len()
    );
    let stream = reader.get_mut();
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(body).expect("write body");

    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let mut length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
            length = v.trim().parse().expect("numeric content-length");
        }
    }
    let mut body = vec![0u8; length];
    reader.read_exact(&mut body).expect("body");
    (status, String::from_utf8_lossy(&body).into_owned())
}

fn main() -> Result<(), snappix::Error> {
    // A small co-designed model at the paper's 16x16 edge scale.
    let mask = patterns::long_exposure(T, (8, 8))?;
    let model = SnapPixAr::new(VitConfig::snappix_s(HW, HW, CLASSES), mask)?;
    let server = Server::builder(Pipeline::builder(model))
        .with_workers(2)
        .with_queue_depth(64)
        .with_batch_policy(BatchPolicy::new(8, Duration::from_millis(2)))
        .build()?;

    // No rate limit here: every loopback client shares one peer IP, so
    // a per-client token bucket would throttle the whole fleet as one.
    let gateway = Gateway::builder(server)
        .with_max_connections(CLIENTS + 8)
        .bind()
        .map_err(snappix::Error::from)?;
    let addr = gateway.local_addr();
    println!(
        "gateway on http://{addr} over {} workers, queue depth {}",
        gateway.server().workers(),
        gateway.server().queue_capacity(),
    );

    let mut rng = StdRng::seed_from_u64(11);
    let clips: Vec<Vec<u8>> = (0..CLIENTS * CLIPS_PER_CLIENT)
        .map(|_| {
            Tensor::rand_uniform(&mut rng, &[T, HW, HW], 0.0, 1.0)
                .as_slice()
                .iter()
                .flat_map(|v| v.to_le_bytes())
                .collect()
        })
        .collect();

    let ok = AtomicU64::new(0);
    let shed = AtomicU64::new(0);
    let expired = AtomicU64::new(0);
    let started = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let (clips, ok, shed, expired) = (&clips, &ok, &shed, &expired);
            scope.spawn(move || {
                let stream = TcpStream::connect(addr).expect("connect");
                stream
                    .set_read_timeout(Some(Duration::from_secs(120)))
                    .expect("timeout");
                let mut conn = BufReader::new(stream);
                for i in 0..CLIPS_PER_CLIENT {
                    let body = &clips[client * CLIPS_PER_CLIENT + i];
                    // Every third client is deadline-bound; the rest wait.
                    let extra = if client % 3 == 2 {
                        "x-snappix-deadline-ms: 250\r\n"
                    } else {
                        ""
                    };
                    let (status, _) = roundtrip(&mut conn, "POST", "/v1/classify", extra, body);
                    match status {
                        200 => ok.fetch_add(1, Ordering::Relaxed),
                        503 => shed.fetch_add(1, Ordering::Relaxed),
                        504 => expired.fetch_add(1, Ordering::Relaxed),
                        other => panic!("client {client}: unexpected status {other}"),
                    };
                }
                // A handful of clients double as monitoring scrapers.
                if client % 50 == 0 {
                    let (status, page) = roundtrip(&mut conn, "GET", "/metrics", "", &[]);
                    assert_eq!(status, 200);
                    assert!(page.contains("snappix_server_requests_submitted_total"));
                }
            });
        }
    });
    let elapsed = started.elapsed();

    let total = (CLIENTS * CLIPS_PER_CLIENT) as u64;
    let (ok, shed, expired) = (ok.into_inner(), shed.into_inner(), expired.into_inner());
    assert_eq!(ok + shed + expired, total, "every request was answered");
    println!(
        "\n{CLIENTS} clients x {CLIPS_PER_CLIENT} clips in {elapsed:.2?} \
         ({:.0} req/s over the wire)",
        total as f64 / elapsed.as_secs_f64()
    );
    println!("{ok} served (200), {shed} shed (503), {expired} expired (504)");

    let (gateway_stats, server_stats) = gateway.shutdown();
    server_stats.debug_assert_conserved();
    println!("\n--- gateway telemetry ---\n{gateway_stats}");
    println!("--- server telemetry ---\n{server_stats}");
    println!(
        "mean batch size {:.2} across {} batches",
        server_stats.mean_batch_size(),
        server_stats.batches
    );
    Ok(())
}
