//! Integration tests of the exposure-pattern pipeline: builtin patterns,
//! decorrelation learning, and codec invariants (property-based).

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use snappix::prelude::*;

const T: usize = 8;
const TILE: (usize, usize) = (4, 4);

fn all_builtin_masks(seed: u64) -> Vec<(PatternKind, ExposureMask)> {
    let mut rng = StdRng::seed_from_u64(seed);
    vec![
        (
            PatternKind::LongExposure,
            patterns::long_exposure(T, TILE).expect("valid dims"),
        ),
        (
            PatternKind::ShortExposure,
            patterns::short_exposure(T, TILE, 4).expect("valid dims"),
        ),
        (
            PatternKind::Random,
            patterns::random(T, TILE, 0.5, &mut rng).expect("valid dims"),
        ),
        (
            PatternKind::SparseRandom,
            patterns::sparse_random(T, TILE, &mut rng).expect("valid dims"),
        ),
    ]
}

#[test]
fn every_builtin_pattern_round_trips_through_the_codec() {
    let data = Dataset::new(ssv2_like(T, 16, 16), 2);
    let batch = data.batch(0, 2);
    for (kind, mask) in all_builtin_masks(1) {
        let coded = encode_batch(&batch.videos, &mask).unwrap_or_else(|e| {
            panic!("{kind}: encode failed: {e}");
        });
        assert_eq!(coded.shape(), &[2, 16, 16], "{kind}");
        assert!(
            coded.as_slice().iter().all(|v| v.is_finite() && *v >= 0.0),
            "{kind}: coded values must be finite and non-negative"
        );
        let normalized = encode_batch_normalized(&batch.videos, &mask).expect("normalize");
        // Normalized values stay within the input range [0, 1].
        assert!(
            normalized
                .as_slice()
                .iter()
                .all(|&v| (0.0..=1.0).contains(&v)),
            "{kind}: normalization must bound values"
        );
    }
}

#[test]
fn decorrelated_pattern_beats_all_builtins_on_correlation() {
    let data = Dataset::new(ssv2_like(T, 16, 16), 48);
    let mut trainer = DecorrelationTrainer::new(DecorrelationConfig {
        slots: T,
        tile: TILE,
        batch_size: 8,
        lr: 0.1,
        ..DecorrelationConfig::default()
    })
    .expect("valid config");
    let learned = trainer.train(&data, 100).expect("training");

    let eval = Dataset::new(ssv2_like(T, 16, 16), 24);
    let rho_learned = measure_pattern_correlation(&eval, &learned.mask, 24).expect("measurement");
    for (kind, mask) in all_builtin_masks(7) {
        let rho = measure_pattern_correlation(&eval, &mask, 24).expect("measurement");
        assert!(
            rho_learned < rho + 1e-4,
            "decorrelated ({rho_learned:.4}) should not lose to {kind} ({rho:.4})"
        );
    }
}

#[test]
fn correlation_ordering_matches_paper_figure6_legend() {
    // Fig. 6 legend: long (0.38) > short (0.48? no — short 0.48 > long
    // 0.38) ... the paper lists short 0.48, long 0.38, random 0.29,
    // sparse random 0.23, decorrelated 0.16. The robust ordering we
    // assert: the static full-exposure family (long/short) is more
    // correlated than the randomized family (random/sparse random).
    let eval = Dataset::new(ssv2_like(T, 16, 16), 24);
    let masks = all_builtin_masks(3);
    let rho = |kind: PatternKind| -> f32 {
        let (_, m) = masks.iter().find(|(k, _)| *k == kind).expect("present");
        measure_pattern_correlation(&eval, m, 24).expect("measurement")
    };
    let long = rho(PatternKind::LongExposure);
    let short = rho(PatternKind::ShortExposure);
    let random = rho(PatternKind::Random);
    let sparse = rho(PatternKind::SparseRandom);
    assert!(
        long.min(short) > random.max(sparse) * 0.8,
        "uniform exposures (long {long:.3}, short {short:.3}) should be more correlated \
         than randomized ones (random {random:.3}, sparse {sparse:.3})"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Eqn. 1 is linear in the video: encode(a*Y1 + b*Y2) = a*X1 + b*X2.
    #[test]
    fn encode_is_linear(seed in 0u64..500, a in 0.1f32..2.0, b in 0.1f32..2.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mask = patterns::random(T, TILE, 0.5, &mut rng).expect("valid dims");
        let y1 = Tensor::rand_uniform(&mut rng, &[T, 8, 8], 0.0, 1.0);
        let y2 = Tensor::rand_uniform(&mut rng, &[T, 8, 8], 0.0, 1.0);
        let combo = y1.scale(a).add(&y2.scale(b)).expect("same shape");
        let lhs = encode(&combo, &mask).expect("encode");
        let rhs = encode(&y1, &mask).expect("encode").scale(a)
            .add(&encode(&y2, &mask).expect("encode").scale(b)).expect("same shape");
        prop_assert!(lhs.approx_eq(&rhs, 1e-4));
    }

    /// The coded image never exceeds the per-pixel exposure count times
    /// the video's maximum value.
    #[test]
    fn encode_is_bounded_by_exposure_count(seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mask = patterns::random(T, TILE, 0.5, &mut rng).expect("valid dims");
        let video = Tensor::rand_uniform(&mut rng, &[T, 8, 8], 0.0, 1.0);
        let coded = encode(&video, &mask).expect("encode");
        let counts = mask.exposure_counts();
        for y in 0..8 {
            for x in 0..8 {
                let c = counts.get(&[y % TILE.0, x % TILE.1]).expect("in range");
                let v = coded.get(&[y, x]).expect("in range");
                prop_assert!(v <= c + 1e-5, "pixel ({y},{x}): {v} > count {c}");
            }
        }
    }

    /// Permuting which slots are open cannot change the coded image of a
    /// static (time-constant) video.
    #[test]
    fn static_scenes_depend_only_on_exposure_counts(seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mask = patterns::random(T, TILE, 0.5, &mut rng).expect("valid dims");
        let frame = Tensor::rand_uniform(&mut rng, &[1, 8, 8], 0.0, 1.0);
        let mut frames = Vec::new();
        for _ in 0..T {
            frames.push(frame.clone());
        }
        let refs: Vec<&Tensor> = frames.iter().collect();
        let video = Tensor::concat(&refs, 0).expect("same shapes");
        let coded = encode(&video, &mask).expect("encode");
        // Expected: frame value x exposure count at each pixel.
        let counts = mask.exposure_counts();
        for y in 0..8 {
            for x in 0..8 {
                let expect = frame.get(&[0, y, x]).expect("in range")
                    * counts.get(&[y % TILE.0, x % TILE.1]).expect("in range");
                prop_assert!((coded.get(&[y, x]).expect("in range") - expect).abs() < 1e-4);
            }
        }
    }

    /// Normalized encoding of a constant video recovers the constant at
    /// every exposed pixel.
    #[test]
    fn normalization_recovers_constants(value in 0.05f32..1.0, seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mask = patterns::sparse_random(T, TILE, &mut rng).expect("valid dims");
        let video = Tensor::full(&[T, 8, 8], value);
        let normalized = encode_normalized(&video, &mask).expect("encode");
        prop_assert!(normalized.approx_eq(&Tensor::full(&[8, 8], value), 1e-5));
    }
}
