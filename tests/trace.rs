//! Cross-layer tracing suite: a real gateway serves classify requests
//! with a live [`Tracer`], and `GET /debug/trace` must come back as
//! Chrome trace-event JSON whose span tree is *structurally* sound —
//! every parent resolves, no cycles, timestamps monotonic, the batch
//! span shared by its member requests. The JSON is validated with a
//! from-scratch parser (no serde in the workspace), so both directions
//! of the exporter's contract live in the repo. Tracing must also be
//! observationally free: logits served with tracing on and off are
//! bit-for-bit identical.

use rand::{rngs::StdRng, SeedableRng};
use snappix_gateway::prelude::*;
use snappix_trace::ArgValue;
use std::collections::{BTreeMap, HashSet};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Barrier;
use std::time::{Duration, Instant};

const T: usize = 4;
const HW: usize = 16;
const CLASSES: usize = 5;

fn model() -> SnapPixAr {
    let mask = patterns::long_exposure(T, (8, 8)).expect("valid mask");
    SnapPixAr::new(VitConfig::snappix_s(HW, HW, CLASSES), mask).expect("valid model")
}

fn clip_bytes(clip: &Tensor) -> Vec<u8> {
    clip.as_slice()
        .iter()
        .flat_map(|v| v.to_le_bytes())
        .collect()
}

fn clips(n: usize) -> Vec<Tensor> {
    let mut rng = StdRng::seed_from_u64(0x7ace);
    (0..n)
        .map(|_| Tensor::rand_uniform(&mut rng, &[T, HW, HW], 0.0, 1.0))
        .collect()
}

// ---------------------------------------------------------------------
// A from-scratch JSON parser — just enough of RFC 8259 to fully decode
// the exporter's output (objects, arrays, strings with every escape,
// numbers, literals), panicking on anything malformed so an invalid
// byte in the trace page fails the test with a position.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_json(text: &str) -> Json {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value();
    p.skip_ws();
    assert_eq!(p.pos, p.bytes.len(), "trailing garbage after JSON value");
    value
}

impl Parser<'_> {
    fn peek(&self) -> u8 {
        assert!(self.pos < self.bytes.len(), "unexpected end of JSON");
        self.bytes[self.pos]
    }

    fn bump(&mut self) -> u8 {
        let b = self.peek();
        self.pos += 1;
        b
    }

    fn expect(&mut self, b: u8) {
        let got = self.bump();
        assert_eq!(
            got as char,
            b as char,
            "expected {:?} at byte {}",
            b as char,
            self.pos - 1
        );
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn value(&mut self) -> Json {
        match self.peek() {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Json::Str(self.string()),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            _ => self.number(),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Json {
        for expected in word.bytes() {
            self.expect(expected);
        }
        value
    }

    fn object(&mut self) -> Json {
        self.expect(b'{');
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == b'}' {
            self.bump();
            return Json::Obj(fields);
        }
        loop {
            self.skip_ws();
            let key = self.string();
            self.skip_ws();
            self.expect(b':');
            self.skip_ws();
            fields.push((key, self.value()));
            self.skip_ws();
            match self.bump() {
                b',' => continue,
                b'}' => return Json::Obj(fields),
                other => panic!("expected ',' or '}}' in object, got {:?}", other as char),
            }
        }
    }

    fn array(&mut self) -> Json {
        self.expect(b'[');
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == b']' {
            self.bump();
            return Json::Arr(items);
        }
        loop {
            self.skip_ws();
            items.push(self.value());
            self.skip_ws();
            match self.bump() {
                b',' => continue,
                b']' => return Json::Arr(items),
                other => panic!("expected ',' or ']' in array, got {:?}", other as char),
            }
        }
    }

    fn string(&mut self) -> String {
        self.expect(b'"');
        let mut out = String::new();
        loop {
            match self.bump() {
                b'"' => return out,
                b'\\' => match self.bump() {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let unit = self.hex4();
                        // Surrogate pairs: a high surrogate must be
                        // followed by an escaped low surrogate.
                        let scalar = if (0xd800..0xdc00).contains(&unit) {
                            self.expect(b'\\');
                            self.expect(b'u');
                            let low = self.hex4();
                            assert!(
                                (0xdc00..0xe000).contains(&low),
                                "unpaired high surrogate in JSON string"
                            );
                            0x10000 + ((unit - 0xd800) << 10) + (low - 0xdc00)
                        } else {
                            assert!(
                                !(0xdc00..0xe000).contains(&unit),
                                "unpaired low surrogate in JSON string"
                            );
                            unit
                        };
                        out.push(char::from_u32(scalar).expect("valid scalar"));
                    }
                    other => panic!("bad escape \\{:?}", other as char),
                },
                byte if byte < 0x20 => panic!("raw control byte {byte:#x} in JSON string"),
                byte => {
                    // Reassemble UTF-8 continuation bytes.
                    let len = match byte {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        0xf0..=0xf7 => 4,
                        _ => panic!("invalid UTF-8 lead byte {byte:#x}"),
                    };
                    let start = self.pos - 1;
                    for _ in 1..len {
                        self.bump();
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos]).expect("valid UTF-8"),
                    );
                }
            }
        }
    }

    fn hex4(&mut self) -> u32 {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = (self.bump() as char).to_digit(16).expect("hex digit");
            v = v * 16 + d;
        }
        v
    }

    fn number(&mut self) -> Json {
        let start = self.pos;
        if self.peek() == b'-' {
            self.bump();
        }
        while self.pos < self.bytes.len()
            && matches!(
                self.bytes[self.pos],
                b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-'
            )
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        Json::Num(
            text.parse()
                .unwrap_or_else(|_| panic!("bad number {text:?}")),
        )
    }
}

// ---------------------------------------------------------------------
// Wire helpers (independent of the gateway's own HTTP code, like the
// gateway suite's client).
// ---------------------------------------------------------------------

struct Reply {
    status: u16,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

impl Reply {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn text(&self) -> String {
        String::from_utf8(self.body.clone()).expect("utf-8 body")
    }
}

struct Client {
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).expect("connect to gateway");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .expect("socket timeout");
        Client {
            reader: BufReader::new(stream),
        }
    }

    fn send(&mut self, method: &str, path: &str, headers: &[(&str, String)], body: &[u8]) -> Reply {
        let mut head = format!("{method} {path} HTTP/1.1\r\n");
        for (name, value) in headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        if method == "POST" {
            head.push_str(&format!("content-length: {}\r\n", body.len()));
        }
        head.push_str("\r\n");
        let stream = self.reader.get_mut();
        stream.write_all(head.as_bytes()).expect("write head");
        stream.write_all(body).expect("write body");
        stream.flush().expect("flush");
        self.read_reply()
    }

    fn read_reply(&mut self) -> Reply {
        let mut status_line = String::new();
        self.reader
            .read_line(&mut status_line)
            .expect("read status line");
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .unwrap_or_else(|| panic!("malformed status line {status_line:?}"))
            .parse()
            .expect("numeric status");
        let mut headers = Vec::new();
        loop {
            let mut line = String::new();
            self.reader.read_line(&mut line).expect("read header line");
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            let (name, value) = line.split_once(':').expect("header colon");
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
        let length: usize = headers
            .iter()
            .find(|(n, _)| n == "content-length")
            .map(|(_, v)| v.parse().expect("numeric content-length"))
            .expect("content-length present");
        let mut body = vec![0u8; length];
        self.reader.read_exact(&mut body).expect("read body");
        Reply {
            status,
            headers,
            body,
        }
    }
}

// ---------------------------------------------------------------------
// A decoded "X" (complete) trace event.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
struct Span {
    name: String,
    ts: u64,
    dur: u64,
    trace_id: u64,
    span_id: u64,
    parent: u64,
    batch: Option<u64>,
}

/// Decode and structurally validate a Chrome trace document: the
/// envelope, per-event required fields, and file-order timestamp
/// monotonicity. Returns the complete events.
fn decode_trace(text: &str) -> Vec<Span> {
    let doc = parse_json(text);
    assert_eq!(
        doc.get("displayTimeUnit").and_then(Json::as_str),
        Some("ms"),
        "Chrome trace envelope"
    );
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");

    let mut spans = Vec::new();
    let mut last_ts = 0u64;
    for event in events {
        let phase = event.get("ph").and_then(Json::as_str).expect("ph field");
        let name = event
            .get("name")
            .and_then(Json::as_str)
            .expect("name field")
            .to_string();
        match phase {
            "M" => {
                assert_eq!(name, "thread_name", "only thread-name metadata is emitted");
                assert!(spans.is_empty(), "metadata precedes all events");
                event
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                    .expect("thread_name metadata names the lane");
            }
            "X" => {
                let args = event.get("args").expect("args object");
                let ts = event.get("ts").and_then(Json::as_u64).expect("ts");
                // Snapshots are ordered by start time: the exported
                // file must be monotonic so viewers never re-sort.
                assert!(ts >= last_ts, "timestamps regress in file order");
                last_ts = ts;
                spans.push(Span {
                    name,
                    ts,
                    dur: event.get("dur").and_then(Json::as_u64).expect("dur"),
                    trace_id: args
                        .get("trace_id")
                        .and_then(Json::as_u64)
                        .expect("trace_id"),
                    span_id: args.get("span_id").and_then(Json::as_u64).expect("span_id"),
                    parent: args.get("parent").and_then(Json::as_u64).expect("parent"),
                    batch: args.get("batch").and_then(Json::as_u64),
                });
            }
            other => panic!("unexpected event phase {other:?}"),
        }
    }
    spans
}

/// Every nonzero parent resolves to a span in the document, and parent
/// chains terminate (no cycles).
fn assert_tree_is_sound(spans: &[Span]) {
    let mut by_id = BTreeMap::new();
    for span in spans {
        assert!(
            by_id.insert(span.span_id, span).is_none(),
            "span id {} appears twice",
            span.span_id
        );
    }
    for span in spans {
        let mut visited = HashSet::new();
        let mut cursor = span;
        while cursor.parent != 0 {
            assert!(
                visited.insert(cursor.span_id),
                "cycle through span {} ({})",
                cursor.span_id,
                cursor.name
            );
            cursor = by_id.get(&cursor.parent).unwrap_or_else(|| {
                panic!(
                    "span {} ({}) has unresolved parent {}",
                    span.span_id, span.name, cursor.parent
                )
            });
        }
    }
}

// ---------------------------------------------------------------------
// The tests.
// ---------------------------------------------------------------------

/// Everything the exporter can emit — names and string args with
/// quotes, backslashes, and control characters — survives a round trip
/// through the from-scratch parser.
#[test]
fn exporter_escaping_round_trips_through_the_parser() {
    let tracer = Tracer::builder()
        .with_clock({
            let tick = std::sync::atomic::AtomicU64::new(0);
            move || tick.fetch_add(10, std::sync::atomic::Ordering::Relaxed)
        })
        .build();
    let nasty = "a\"b\\c\nd\te\rf\u{1}g\u{7f}∞";
    tracer.record_span(
        "we\"ird\nname",
        7,
        0,
        0,
        100,
        vec![
            ("label", ArgValue::Str(nasty.to_string())),
            ("n", 3u64.into()),
        ],
    );

    let json = tracer.snapshot().to_chrome_json();
    let doc = parse_json(&json);
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents");
    let span = events
        .iter()
        .find(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
        .expect("one complete event");
    assert_eq!(
        span.get("name").and_then(Json::as_str),
        Some("we\"ird\nname"),
        "span names survive escaping"
    );
    assert_eq!(
        span.get("args")
            .and_then(|a| a.get("label"))
            .and_then(Json::as_str),
        Some(nasty),
        "string args survive escaping"
    );
    assert_eq!(
        span.get("args")
            .and_then(|a| a.get("n"))
            .and_then(Json::as_u64),
        Some(3)
    );
}

/// The headline end-to-end check: concurrent classify requests through
/// a real gateway produce a Chrome trace whose span tree covers the
/// whole stack — `accept`/`parse` → `request` → `queue_wait` → `batch`
/// (with `sense`/`forward`/`readout` nested) → `compute` → `respond` —
/// with the batch span genuinely shared by its member requests, and the
/// caller-chosen `X-Snappix-Trace` id adopted and echoed.
#[test]
fn gateway_served_trace_has_a_sound_cross_layer_span_tree() {
    const CLIENTS: usize = 4;
    let server = Server::builder(Pipeline::builder(model()))
        .with_workers(1)
        .with_queue_depth(CLIENTS)
        // A long batch window so the barrier-released burst lands in
        // one batch: the shared-batch-span assertion depends on it.
        .with_batch_policy(BatchPolicy::new(CLIENTS, Duration::from_millis(500)))
        .with_tracer(Tracer::new())
        .build()
        .expect("server assembly");
    let gateway = Gateway::builder(server).bind().expect("bind");
    let addr = gateway.local_addr();
    let all = clips(CLIENTS);

    let barrier = Barrier::new(CLIENTS);
    let echoed: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|client| {
                let (all, barrier) = (&all, &barrier);
                scope.spawn(move || {
                    let mut connection = Client::connect(addr);
                    barrier.wait();
                    // Client 0 picks its own trace id; the rest let the
                    // gateway mint one.
                    let headers: Vec<(&str, String)> = if client == 0 {
                        vec![("x-snappix-trace", "777".to_string())]
                    } else {
                        Vec::new()
                    };
                    let reply = connection.send(
                        "POST",
                        "/v1/classify",
                        &headers,
                        &clip_bytes(&all[client]),
                    );
                    assert_eq!(reply.status, 200, "client {client}: {}", reply.text());
                    reply
                        .header("x-snappix-trace")
                        .expect("trace id echoed on the response")
                        .parse::<u64>()
                        .expect("numeric trace id")
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    assert_eq!(echoed[0], 777, "caller-chosen trace id is adopted");
    let distinct: HashSet<u64> = echoed.iter().copied().collect();
    assert_eq!(distinct.len(), CLIENTS, "minted trace ids are distinct");
    assert!(!distinct.contains(&0), "echoed ids are nonzero");

    // `respond` spans are recorded *after* the response bytes reach the
    // client, so poll until the page contains all of them.
    let deadline = Instant::now() + Duration::from_secs(10);
    let spans = loop {
        let reply = Client::connect(addr).send("GET", "/debug/trace", &[], &[]);
        assert_eq!(reply.status, 200);
        assert_eq!(reply.header("content-type"), Some("application/json"));
        let spans = decode_trace(&reply.text());
        if spans.iter().filter(|s| s.name == "respond").count() >= CLIENTS {
            break spans;
        }
        assert!(
            Instant::now() < deadline,
            "respond spans never appeared in /debug/trace"
        );
        std::thread::sleep(Duration::from_millis(10));
    };

    assert_tree_is_sound(&spans);
    let by_id: BTreeMap<u64, &Span> = spans.iter().map(|s| (s.span_id, s)).collect();

    // Per-request spans, one of each per client, all inside the trace
    // the client saw echoed.
    for &trace_id in &echoed {
        let mine: Vec<&Span> = spans.iter().filter(|s| s.trace_id == trace_id).collect();
        let request = mine
            .iter()
            .find(|s| s.name == "request")
            .expect("request span");
        assert_eq!(request.parent, 0, "request is the trace root");
        for name in ["accept", "parse", "queue_wait", "compute", "respond"] {
            let span = mine
                .iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("trace {trace_id} is missing a {name} span"));
            assert_eq!(
                span.parent, request.span_id,
                "{name} hangs off the request span"
            );
        }
        // The wire spans bracket the serving-side work.
        let queue_wait = mine.iter().find(|s| s.name == "queue_wait").expect("span");
        assert!(queue_wait.ts >= request.ts, "queue wait starts in-request");
    }

    // The batch span is background work shared by its members: every
    // compute span names its batch, and the barrier-released burst
    // landed at least one batch with multiple members.
    let computes: Vec<&Span> = spans.iter().filter(|s| s.name == "compute").collect();
    assert_eq!(computes.len(), CLIENTS);
    let mut members: BTreeMap<u64, usize> = BTreeMap::new();
    for compute in &computes {
        let batch_id = compute.batch.expect("compute names its batch span");
        let batch = by_id.get(&batch_id).expect("batch span resolves");
        assert_eq!(batch.name, "batch");
        assert_eq!(batch.trace_id, 0, "batches are background spans");
        // The shared forward pass brackets every member's compute span.
        assert!(compute.ts >= batch.ts);
        assert!(compute.ts + compute.dur <= batch.ts + batch.dur);
        *members.entry(batch_id).or_default() += 1;
    }
    assert!(
        members.values().any(|&n| n >= 2),
        "no batch span was shared by multiple requests: {members:?}"
    );

    // Pipeline stage spans nest inside their batch span.
    for name in ["sense", "forward", "readout"] {
        let stages: Vec<&Span> = spans.iter().filter(|s| s.name == name).collect();
        assert!(!stages.is_empty(), "no {name} span in the trace");
        for stage in stages {
            let parent = by_id.get(&stage.parent).expect("stage parent resolves");
            assert_eq!(parent.name, "batch", "{name} nests under the batch span");
            assert!(stage.ts >= parent.ts);
            assert!(stage.ts + stage.dur <= parent.ts + parent.dur);
        }
    }

    // One accept span per connection (first request only).
    assert_eq!(
        spans.iter().filter(|s| s.name == "accept").count(),
        CLIENTS,
        "one accept span per client connection"
    );

    let (_, server_stats) = gateway.shutdown();
    assert_eq!(server_stats.completed, CLIENTS as u64);
    server_stats.debug_assert_conserved();
}

/// Tracing must be observationally free: the same clips served with the
/// tracer on and off produce byte-identical response bodies (the logits
/// are formatted shortest-round-trip, so this is bit-for-bit equality
/// of the numbers), and the propagation header still works when tracing
/// is disabled.
#[test]
fn tracing_on_and_off_serve_bit_for_bit_identical_bodies() {
    const N: usize = 6;
    let all = clips(N);
    let serve = |tracer: Option<Tracer>| -> Vec<Vec<u8>> {
        let mut builder = Server::builder(Pipeline::builder(model())).with_workers(2);
        if let Some(tracer) = tracer {
            builder = builder.with_tracer(tracer);
        }
        let server = builder.build().expect("server assembly");
        let gateway = Gateway::builder(server).bind().expect("bind");
        let mut client = Client::connect(gateway.local_addr());
        let bodies = all
            .iter()
            .map(|clip| {
                let reply = client.send("POST", "/v1/classify", &[], &clip_bytes(clip));
                assert_eq!(reply.status, 200, "{}", reply.text());
                reply.body
            })
            .collect();
        gateway.shutdown();
        bodies
    };

    let traced = serve(Some(Tracer::new()));
    let untraced = serve(None);
    assert_eq!(traced, untraced, "tracing changed the served bytes");
}

/// The debug endpoint and the propagation header degrade explicitly,
/// never silently: a tracerless gateway 404s `/debug/trace` with a
/// pointer to the builder knob, still echoes a caller-chosen trace id
/// (propagation costs nothing), and rejects malformed ids with a 400.
#[test]
fn disabled_tracing_degrades_explicitly() {
    let server = Server::builder(Pipeline::builder(model()))
        .with_workers(1)
        .build()
        .expect("server assembly");
    let gateway = Gateway::builder(server).bind().expect("bind");
    let addr = gateway.local_addr();
    let body = clip_bytes(&clips(1)[0]);

    let reply = Client::connect(addr).send("GET", "/debug/trace", &[], &[]);
    assert_eq!(reply.status, 404);
    assert!(reply.text().contains("with_tracer"), "{}", reply.text());

    // Propagation works without a tracer: the caller's id is echoed...
    let mut client = Client::connect(addr);
    let reply = client.send(
        "POST",
        "/v1/classify",
        &[("x-snappix-trace", "42".to_string())],
        &body,
    );
    assert_eq!(reply.status, 200, "{}", reply.text());
    assert_eq!(reply.header("x-snappix-trace"), Some("42"));
    // ...no id means no header (a disabled tracer mints nothing)...
    let reply = client.send("POST", "/v1/classify", &[], &body);
    assert_eq!(reply.status, 200);
    assert_eq!(reply.header("x-snappix-trace"), None);
    // ...and a malformed id is a client error, not a silent drop.
    for bad in ["0", "-3", "abc"] {
        let reply = client.send(
            "POST",
            "/v1/classify",
            &[("x-snappix-trace", bad.to_string())],
            &body,
        );
        assert_eq!(reply.status, 400, "trace id {bad:?} must be rejected");
        assert!(reply.text().contains("x-snappix-trace"), "{}", reply.text());
    }

    let (_, server_stats) = gateway.shutdown();
    server_stats.debug_assert_conserved();
}
