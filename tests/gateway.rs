//! Integration suite for the `snappix-gateway` subsystem: real TCP
//! clients against a real listener. The network front-end must be
//! *operationally* different from in-process serving (HTTP framing,
//! rate limits, explicit 4xx/5xx shedding) while staying *numerically*
//! identical to it — and its `/metrics` page must be valid Prometheus
//! text with conserved request accounting.

use rand::{rngs::StdRng, SeedableRng};
use snappix_gateway::prelude::*;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

const T: usize = 4;
const HW: usize = 16;
const CLASSES: usize = 5;

fn model() -> SnapPixAr {
    let mask = patterns::long_exposure(T, (8, 8)).expect("valid mask");
    SnapPixAr::new(VitConfig::snappix_s(HW, HW, CLASSES), mask).expect("valid model")
}

fn clips(n: usize) -> Vec<Tensor> {
    let mut rng = StdRng::seed_from_u64(0xabcd);
    (0..n)
        .map(|_| Tensor::rand_uniform(&mut rng, &[T, HW, HW], 0.0, 1.0))
        .collect()
}

fn clip_bytes(clip: &Tensor) -> Vec<u8> {
    clip.as_slice()
        .iter()
        .flat_map(|v| v.to_le_bytes())
        .collect()
}

/// A minimal keep-alive HTTP/1.1 client — deliberately independent of
/// the gateway's own parser, so both sides of the wire are exercised.
struct Client {
    reader: BufReader<TcpStream>,
}

struct Reply {
    status: u16,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

impl Reply {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn text(&self) -> String {
        String::from_utf8(self.body.clone()).expect("utf-8 body")
    }
}

impl Client {
    fn connect(addr: SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).expect("connect to gateway");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .expect("socket timeout");
        Client {
            reader: BufReader::new(stream),
        }
    }

    fn send(&mut self, method: &str, path: &str, headers: &[(&str, String)], body: &[u8]) -> Reply {
        let mut head = format!("{method} {path} HTTP/1.1\r\n");
        for (name, value) in headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        if method == "POST" {
            head.push_str(&format!("content-length: {}\r\n", body.len()));
        }
        head.push_str("\r\n");
        let stream = self.reader.get_mut();
        stream.write_all(head.as_bytes()).expect("write head");
        stream.write_all(body).expect("write body");
        stream.flush().expect("flush");
        self.read_reply()
    }

    fn read_reply(&mut self) -> Reply {
        let mut status_line = String::new();
        self.reader
            .read_line(&mut status_line)
            .expect("read status line");
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .unwrap_or_else(|| panic!("malformed status line {status_line:?}"))
            .parse()
            .expect("numeric status");
        let mut headers = Vec::new();
        loop {
            let mut line = String::new();
            self.reader.read_line(&mut line).expect("read header line");
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            let (name, value) = line.split_once(':').expect("header colon");
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
        let length: usize = headers
            .iter()
            .find(|(n, _)| n == "content-length")
            .map(|(_, v)| v.parse().expect("numeric content-length"))
            .expect("content-length present");
        let mut body = vec![0u8; length];
        self.reader.read_exact(&mut body).expect("read body");
        Reply {
            status,
            headers,
            body,
        }
    }
}

fn classify(client: &mut Client, clip: &Tensor) -> Reply {
    client.send("POST", "/v1/classify", &[], &clip_bytes(clip))
}

/// `{"label":N,"logits":[...]}` back into numbers; logits parse as f32
/// so shortest-round-trip formatting restores the exact bits.
fn parse_prediction(body: &str) -> (usize, Vec<f32>) {
    let label = body
        .split("\"label\":")
        .nth(1)
        .expect("label field")
        .split([',', '}'])
        .next()
        .expect("label value")
        .parse()
        .expect("numeric label");
    let logits = body
        .split("\"logits\":[")
        .nth(1)
        .expect("logits field")
        .split(']')
        .next()
        .expect("logits close")
        .split(',')
        .map(|s| s.parse().expect("float logit"))
        .collect();
    (label, logits)
}

/// A parsed `/metrics` page: family name -> declared type, plus every
/// sample. Panics (failing the test) on any line that is not valid
/// Prometheus text exposition format.
type Sample = (String, Vec<(String, String)>, f64);

struct Scrape {
    families: BTreeMap<String, String>,
    samples: Vec<Sample>,
}

impl Scrape {
    fn value(&self, name: &str) -> f64 {
        let matching: Vec<&Sample> = self.samples.iter().filter(|(n, _, _)| n == name).collect();
        assert_eq!(matching.len(), 1, "{name} should be a single sample");
        matching[0].2
    }

    fn sum_over_labels(&self, name: &str) -> f64 {
        self.samples
            .iter()
            .filter(|(n, _, _)| n == name)
            .map(|(_, _, v)| v)
            .sum()
    }
}

fn valid_metric_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn parse_prometheus(page: &str) -> Scrape {
    let mut families = BTreeMap::new();
    let mut samples = Vec::new();
    for line in page.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split(' ');
            let name = parts.next().expect("family name").to_string();
            let kind = parts.next().expect("family type").to_string();
            assert!(valid_metric_name(&name), "bad family name {name:?}");
            assert!(
                ["counter", "gauge", "histogram", "summary"].contains(&kind.as_str()),
                "unknown metric type {kind:?}"
            );
            assert!(
                families.insert(name.clone(), kind).is_none(),
                "family {name} declared twice"
            );
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or comment
        }
        // Sample: name[{labels}] value
        let (name_and_labels, value) = line.rsplit_once(' ').expect("sample needs a value");
        let value: f64 = value
            .parse()
            .unwrap_or_else(|_| panic!("unparseable value in {line:?}"));
        let (name, labels) = match name_and_labels.split_once('{') {
            None => (name_and_labels.to_string(), Vec::new()),
            Some((name, rest)) => {
                let inner = rest.strip_suffix('}').expect("closing brace");
                let labels = inner
                    .split(',')
                    .map(|pair| {
                        let (k, v) = pair.split_once('=').expect("label equals");
                        let v = v
                            .strip_prefix('"')
                            .and_then(|v| v.strip_suffix('"'))
                            .expect("quoted label value");
                        assert!(valid_metric_name(k), "bad label name {k:?}");
                        (k.to_string(), v.to_string())
                    })
                    .collect();
                (name.to_string(), labels)
            }
        };
        assert!(valid_metric_name(&name), "bad sample name {name:?}");
        // Every sample must belong to a declared family (summary and
        // histogram samples may carry _sum/_count/_bucket suffixes).
        let family = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .filter(|base| {
                families
                    .get(*base)
                    .is_some_and(|k| k == "summary" || k == "histogram")
            })
            .unwrap_or(&name);
        assert!(
            families.contains_key(family),
            "sample {name} has no # TYPE declaration"
        );
        samples.push((name, labels, value));
    }
    Scrape { families, samples }
}

fn scrape(addr: SocketAddr) -> Scrape {
    let reply = Client::connect(addr).send("GET", "/metrics", &[], &[]);
    assert_eq!(reply.status, 200);
    assert_eq!(
        reply.header("content-type"),
        Some("text/plain; version=0.0.4; charset=utf-8"),
        "classic text format is the default"
    );
    let page = reply.text();
    assert!(
        !page.contains("# {"),
        "exemplars must not leak into the classic text format"
    );
    parse_prometheus(&page)
}

/// Compile-time pin: the gateway's object graph crosses threads.
#[test]
fn gateway_types_are_send() {
    fn assert_send<Type: Send>() {}
    assert_send::<Gateway>();
    assert_send::<GatewayBuilder>();
    assert_send::<GatewayError>();
    assert_send::<GatewayStats>();
    fn assert_sync<Type: Sync>() {}
    assert_sync::<Gateway>(); // shared by reference across test threads
}

/// The headline guarantee plus the observability contract in one
/// end-to-end run: 8 concurrent TCP clients' classifications are
/// bit-for-bit identical to a serial in-process pipeline loop, and the
/// `/metrics` scrape afterwards is valid Prometheus text whose request
/// accounting is conserved.
#[test]
fn concurrent_tcp_clients_match_serial_inference_and_metrics_are_conserved() {
    const CLIENTS: usize = 8;
    const PER_CLIENT: usize = 3;
    let all = clips(CLIENTS * PER_CLIENT);

    // Serial reference: one pipeline, one clip at a time, in process.
    let mut serial = Pipeline::builder(model()).build().expect("assembly");
    let reference: Vec<Prediction> = all
        .iter()
        .map(|c| serial.infer_clip(c).expect("serial inference"))
        .collect();

    let server = Server::builder(Pipeline::builder(model()))
        .with_workers(2)
        .with_queue_depth(CLIENTS * PER_CLIENT)
        .with_batch_policy(BatchPolicy::new(4, Duration::from_millis(2)))
        .build()
        .expect("server assembly");
    let gateway = Gateway::builder(server).bind().expect("bind");
    let addr = gateway.local_addr();

    let served: Vec<Vec<(usize, Vec<f32>)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|client| {
                let all = &all;
                scope.spawn(move || {
                    // One keep-alive TCP connection per client; clips
                    // interleaved so batches mix clients.
                    let mut connection = Client::connect(addr);
                    (0..PER_CLIENT)
                        .map(|i| {
                            let reply = classify(&mut connection, &all[i * CLIENTS + client]);
                            assert_eq!(reply.status, 200, "client {client}: {}", reply.text());
                            assert_eq!(reply.header("content-type"), Some("application/json"));
                            parse_prediction(&reply.text())
                        })
                        .collect()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });

    for (client, results) in served.iter().enumerate() {
        for (i, (label, logits)) in results.iter().enumerate() {
            let expected = &reference[i * CLIENTS + client];
            assert_eq!(*label, expected.label, "client {client} clip {i}");
            let expected_logits = expected.logits.as_slice();
            assert_eq!(logits.len(), expected_logits.len());
            for (got, want) in logits.iter().zip(expected_logits) {
                assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "client {client} clip {i}: logits over the wire must round-trip bit-for-bit"
                );
            }
        }
    }

    // The metrics page, scraped over the same wire. The gateway records
    // a request *after* flushing its response, so a scrape racing the
    // last connection's bookkeeping can see the gateway counters lag
    // responses already read. Counters are monotone — wait for the
    // ledger to settle before asserting on the page.
    let served_total = (CLIENTS * PER_CLIENT) as f64;
    let deadline = Instant::now() + Duration::from_secs(5);
    let page = loop {
        let page = scrape(addr);
        if page.sum_over_labels("snappix_gateway_requests_total") >= served_total
            || Instant::now() >= deadline
        {
            break page;
        }
        std::thread::sleep(Duration::from_millis(10));
    };
    assert_eq!(
        page.value("snappix_server_requests_submitted_total"),
        served_total
    );
    // Workers answer tickets *before* recording the batch, so a scrape
    // racing the last batch's bookkeeping may see completed lag the
    // responses already on the wire — but never exceed submissions.
    // (The exact completed == submitted check runs after shutdown.)
    assert!(page.value("snappix_server_requests_completed_total") <= served_total);
    // Conserved request accounting, from the page alone.
    assert_eq!(
        page.value("snappix_server_requests_submitted_total"),
        page.value("snappix_server_requests_completed_total")
            + page.value("snappix_server_requests_expired_total")
            + page.value("snappix_server_requests_failed_total")
            + page.value("snappix_server_requests_in_flight"),
    );
    assert_eq!(
        page.value("snappix_server_batch_size_sum"),
        page.value("snappix_server_requests_completed_total")
            + page.value("snappix_server_requests_failed_total"),
        "every batched clip resolved as completed or failed"
    );
    assert!(page.sum_over_labels("snappix_gateway_requests_total") >= served_total);
    assert!(page.value("snappix_gateway_bytes_read_total") >= served_total * 4096.0);
    assert!(page.families.len() >= 15, "both layers' families exported");

    let (gateway_stats, server_stats) = gateway.shutdown();
    assert_eq!(
        gateway_stats.requests_to(Endpoint::Classify),
        served_total as u64
    );
    assert!(gateway_stats.requests_with_status(200) >= served_total as u64);
    assert_eq!(server_stats.completed, served_total as u64);
    server_stats.debug_assert_conserved();
}

/// The reference table in docs/METRICS.md and a live scrape must agree
/// exactly, in both directions: a metric added without documentation,
/// or documented without being exported, fails here. Rows below the
/// "Off-gateway families" heading document layers the gateway does not
/// host (stream sessions, fleet exports) — they are allowed to be
/// absent from a plain gateway scrape, but still cover any family that
/// does appear.
#[test]
fn metrics_reference_table_matches_a_live_scrape() {
    let table = include_str!("../docs/METRICS.md");
    let rows = |text: &'static str| -> Vec<&'static str> {
        text.lines()
            .filter_map(|line| line.strip_prefix("| `snappix_"))
            .map(|rest| rest.split('`').next().expect("closing backtick"))
            .collect()
    };
    let documented = rows(table);
    let required = rows(
        table
            .split("## Off-gateway families")
            .next()
            .expect("split never empty"),
    );
    assert!(
        !required.is_empty() && documented.len() > required.len(),
        "docs/METRICS.md must document gateway rows and off-gateway rows"
    );

    let server = Server::builder(Pipeline::builder(model()))
        .with_workers(1)
        .build()
        .expect("server assembly");
    let gateway = Gateway::builder(server)
        .with_rate_limit(RateLimit::new(1000.0, 1000).expect("valid"))
        .bind()
        .expect("bind");
    // Touch every endpoint once so per-endpoint families have samples.
    let mut client = Client::connect(gateway.local_addr());
    assert_eq!(classify(&mut client, &clips(1)[0]).status, 200);
    assert_eq!(client.send("GET", "/health", &[], &[]).status, 200);
    assert_eq!(client.send("GET", "/stats", &[], &[]).status, 200);
    let page = scrape(gateway.local_addr());

    for name in &required {
        let full = format!("snappix_{name}");
        assert!(
            page.families.contains_key(&full),
            "docs/METRICS.md documents {full} but /metrics does not export it"
        );
    }
    for family in page.families.keys() {
        let short = family.strip_prefix("snappix_").expect("snappix_ prefix");
        assert!(
            documented.contains(&short),
            "/metrics exports {family} but docs/METRICS.md does not document it"
        );
    }
    // The latency families are real histograms now — buckets a scraper
    // can aggregate across replicas — not summaries.
    for family in [
        "snappix_server_queue_latency_seconds",
        "snappix_server_compute_latency_seconds",
        "snappix_gateway_request_latency_seconds",
        "snappix_server_batch_size",
    ] {
        assert_eq!(
            page.families.get(family).map(String::as_str),
            Some("histogram"),
            "{family} must be exported as a histogram"
        );
    }
}

/// `Accept: application/openmetrics-text` selects the OpenMetrics
/// exposition: same families and values, plus trace exemplars on the
/// latency buckets and the mandatory `# EOF` trailer. A caller-chosen
/// trace id must ride the request end to end — gateway wire latency
/// *and* the serving layer's queue latency — and come back on the page.
#[test]
fn openmetrics_scrapes_carry_trace_exemplars_and_eof() {
    let server = Server::builder(Pipeline::builder(model()))
        .with_workers(1)
        .with_tracer(Tracer::new())
        .build()
        .expect("server assembly");
    let gateway = Gateway::builder(server).bind().expect("bind");
    let mut client = Client::connect(gateway.local_addr());
    let reply = client.send(
        "POST",
        "/v1/classify",
        &[("x-snappix-trace", "48879".into())],
        &clip_bytes(&clips(1)[0]),
    );
    assert_eq!(reply.status, 200, "{}", reply.text());

    let reply = client.send(
        "GET",
        "/metrics",
        &[(
            "accept",
            // Exactly what a Prometheus 2.x scraper sends.
            "application/openmetrics-text;version=1.0.0;q=0.75,text/plain;version=0.0.4;q=0.5"
                .into(),
        )],
        &[],
    );
    assert_eq!(reply.status, 200);
    assert_eq!(
        reply.header("content-type"),
        Some("application/openmetrics-text; version=1.0.0; charset=utf-8")
    );
    let page = reply.text();
    assert!(page.ends_with("# EOF\n"), "OpenMetrics pages end in # EOF");
    assert!(
        page.lines().any(|l| {
            l.starts_with("snappix_gateway_request_latency_seconds_bucket{endpoint=\"classify\"")
                && l.contains("# {trace_id=\"48879\"}")
        }),
        "classify latency buckets must carry the request's trace id:\n{page}"
    );
    assert!(
        page.lines().any(|l| {
            l.starts_with("snappix_server_queue_latency_seconds_bucket")
                && l.contains("# {trace_id=\"48879\"}")
        }),
        "the same trace id must reach the serving layer's queue buckets:\n{page}"
    );
    // Both formats render the same registry: family for family, the
    // classic page and the OpenMetrics page agree. (OpenMetrics
    // declares counters without the `_total` suffix, so normalize the
    // classic names the same way before comparing.)
    let mut openmetrics_families: Vec<String> = page
        .lines()
        .filter_map(|l| l.strip_prefix("# TYPE "))
        .map(|rest| rest.split(' ').next().expect("family name").to_string())
        .collect();
    openmetrics_families.sort();
    let classic = scrape(gateway.local_addr());
    let mut classic_families: Vec<String> = classic
        .families
        .iter()
        .map(
            |(name, kind)| match (kind.as_str(), name.strip_suffix("_total")) {
                ("counter", Some(base)) => base.to_string(),
                _ => name.clone(),
            },
        )
        .collect();
    classic_families.sort();
    assert_eq!(
        classic_families, openmetrics_families,
        "both formats expose the same families"
    );
    gateway.shutdown();
}

/// Telemetry must never change what clients receive: a gateway whose
/// server was built with a disabled registry answers classify with the
/// same bytes as the default (metrics-on) gateway, and its `/metrics`
/// page is empty rather than wrong.
#[test]
fn disabling_metrics_changes_no_response_bytes() {
    let build = |registry: Registry| {
        Gateway::builder(
            Server::builder(Pipeline::builder(model()))
                .with_workers(1)
                .with_metrics(registry)
                .build()
                .expect("server assembly"),
        )
        .bind()
        .expect("bind")
    };
    let on = build(Registry::new());
    let off = build(Registry::disabled());
    let all = clips(4);

    let mut on_client = Client::connect(on.local_addr());
    let mut off_client = Client::connect(off.local_addr());
    for clip in &all {
        let a = classify(&mut on_client, clip);
        let b = classify(&mut off_client, clip);
        assert_eq!(a.status, 200, "{}", a.text());
        assert_eq!(b.status, 200, "{}", b.text());
        assert_eq!(
            a.body, b.body,
            "classify bodies must be bit-for-bit identical with metrics on or off"
        );
    }

    // The enabled page counts the work; the disabled page is empty.
    let page = scrape(on.local_addr());
    assert_eq!(
        page.value("snappix_server_requests_completed_total"),
        all.len() as f64
    );
    let reply = Client::connect(off.local_addr()).send("GET", "/metrics", &[], &[]);
    assert_eq!(reply.status, 200);
    assert_eq!(reply.text(), "", "a disabled registry renders nothing");

    on.shutdown();
    let (_, stats) = off.shutdown();
    assert_eq!(
        stats.completed, 0,
        "a disabled registry reads back all-zero stats"
    );
}

/// Saturation becomes explicit backoff on the wire, never a hang: with
/// a one-slot queue and a worker parked holding its batch open, a
/// second classify answers 503 + Retry-After within bounded time.
#[test]
fn saturated_one_slot_queue_returns_503_with_retry_after_never_hangs() {
    let server = Server::builder(Pipeline::builder(model()))
        .with_workers(1)
        .with_queue_depth(1)
        // A large max_batch with a long delay parks the worker in its
        // "wait for more clips" phase, so the admitted request stays
        // queued and deterministically occupies the only slot.
        .with_batch_policy(BatchPolicy::new(8, Duration::from_secs(30)))
        .build()
        .expect("server assembly");
    let gateway = Gateway::builder(server).bind().expect("bind");
    let addr = gateway.local_addr();
    let clip = &clips(1)[0];

    // Client A occupies the slot; its handler thread is now waiting on
    // the parked batch, so A gets no response yet.
    let mut occupant = Client::connect(addr);
    {
        let stream = occupant.reader.get_mut();
        stream
            .write_all(
                format!(
                    "POST /v1/classify HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
                    clip_bytes(clip).len()
                )
                .as_bytes(),
            )
            .expect("head");
        stream.write_all(&clip_bytes(clip)).expect("body");
        stream.flush().expect("flush");
    }
    // Give the submission time to land in the queue.
    let deadline = Instant::now() + Duration::from_secs(10);
    while gateway.server().queue_depth() == 0 {
        assert!(
            Instant::now() < deadline,
            "occupant never reached the queue"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // Client B must be shed immediately — not queued, not hung.
    let started = Instant::now();
    let reply = classify(&mut Client::connect(addr), clip);
    let elapsed = started.elapsed();
    assert_eq!(reply.status, 503, "{}", reply.text());
    assert!(reply.text().contains("overloaded"), "{}", reply.text());
    let retry_after: u64 = reply
        .header("retry-after")
        .expect("Retry-After on 503")
        .parse()
        .expect("numeric Retry-After");
    assert!(retry_after >= 1);
    assert!(
        elapsed < Duration::from_secs(5),
        "shedding must be immediate, took {elapsed:?}"
    );

    // Teardown with a parked batch must not deadlock either: the
    // occupant's handler notices the shutdown flag and answers 503, or
    // the connection is closed under it — both are "never a hang".
    let (gateway_stats, server_stats) = gateway.shutdown();
    assert!(gateway_stats.requests_with_status(503) >= 1);
    assert_eq!(
        server_stats.rejected, 1,
        "B was shed by the admission queue"
    );
    server_stats.debug_assert_conserved();
}

/// The per-client token bucket answers 429 with a Retry-After, and a
/// client that actually waits is admitted again.
#[test]
fn rate_limited_clients_get_429_then_service_after_backoff() {
    let server = Server::builder(Pipeline::builder(model()))
        .with_workers(1)
        .build()
        .expect("server assembly");
    let gateway = Gateway::builder(server)
        .with_rate_limit(RateLimit::new(1.0, 2).expect("valid"))
        .bind()
        .expect("bind");
    let clip = &clips(1)[0];
    let mut client = Client::connect(gateway.local_addr());

    // The burst passes...
    assert_eq!(classify(&mut client, clip).status, 200);
    assert_eq!(classify(&mut client, clip).status, 200);
    // ...the third is rate-limited with explicit backoff...
    let shed = classify(&mut client, clip);
    assert_eq!(shed.status, 429, "{}", shed.text());
    let retry_after: u64 = shed
        .header("retry-after")
        .expect("Retry-After on 429")
        .parse()
        .expect("numeric Retry-After");
    assert!(retry_after >= 1);
    // ...and obeying it restores service (1 rps refills a token in 1 s).
    std::thread::sleep(Duration::from_millis(1200));
    assert_eq!(classify(&mut client, clip).status, 200);

    let (gateway_stats, _) = gateway.shutdown();
    assert_eq!(gateway_stats.rate_limited, 1);
    assert_eq!(gateway_stats.requests_with_status(429), 1);
}

/// A deadline that expires in the serving queue answers 504 — the HTTP
/// projection of `ServeError::DeadlineExpired`.
#[test]
fn queue_expired_deadlines_answer_504() {
    let server = Server::builder(Pipeline::builder(model()))
        .with_workers(1)
        .with_batch_policy(BatchPolicy::new(2, Duration::from_millis(50)))
        .build()
        .expect("server assembly");
    let gateway = Gateway::builder(server).bind().expect("bind");
    let clip = &clips(1)[0];
    let mut client = Client::connect(gateway.local_addr());

    // A zero deadline is expired by the time any worker claims it.
    let reply = client.send(
        "POST",
        "/v1/classify",
        &[("x-snappix-deadline-ms", "0".into())],
        &clip_bytes(clip),
    );
    assert_eq!(reply.status, 504, "{}", reply.text());
    // A generous deadline serves normally on the same connection.
    let reply = client.send(
        "POST",
        "/v1/classify",
        &[("x-snappix-deadline-ms", "60000".into())],
        &clip_bytes(clip),
    );
    assert_eq!(reply.status, 200, "{}", reply.text());

    let (_, server_stats) = gateway.shutdown();
    assert_eq!(server_stats.expired, 1);
    assert_eq!(server_stats.completed, 1);
}

/// Protocol-level rejections: wrong sizes, paths, methods and headers
/// all map to 4xx with informative bodies — and never reach the queue.
#[test]
fn malformed_requests_get_4xx_and_health_and_stats_respond() {
    let server = Server::builder(Pipeline::builder(model()))
        .with_workers(1)
        .build()
        .expect("server assembly");
    let gateway = Gateway::builder(server).bind().expect("bind");
    let addr = gateway.local_addr();
    let good = clip_bytes(&clips(1)[0]);

    // Short body: 400 naming both sizes.
    let reply = Client::connect(addr).send("POST", "/v1/classify", &[], &good[..64]);
    assert_eq!(reply.status, 400);
    assert!(reply.text().contains("4096"), "{}", reply.text());
    // Oversized body: 413 at the framing layer.
    let huge = vec![0u8; good.len() + 4];
    let reply = Client::connect(addr).send("POST", "/v1/classify", &[], &huge);
    assert_eq!(reply.status, 413);
    // Unknown path / wrong method.
    let reply = Client::connect(addr).send("GET", "/nope", &[], &[]);
    assert_eq!(reply.status, 404);
    let reply = Client::connect(addr).send("GET", "/v1/classify", &[], &[]);
    assert_eq!(reply.status, 405);
    // Unparseable deadline header.
    let reply = Client::connect(addr).send(
        "POST",
        "/v1/classify",
        &[("x-snappix-deadline-ms", "soon".into())],
        &good,
    );
    assert_eq!(reply.status, 400);
    assert!(reply.text().contains("millisecond"), "{}", reply.text());

    // Liveness and the human-readable dump.
    let reply = Client::connect(addr).send("GET", "/health", &[], &[]);
    assert_eq!(reply.status, 200);
    assert!(
        reply.text().contains("\"status\":\"ok\""),
        "{}",
        reply.text()
    );
    let reply = Client::connect(addr).send("GET", "/stats", &[], &[]);
    assert_eq!(reply.status, 200);
    let dump = reply.text();
    assert!(dump.contains("--- server ---"), "{dump}");
    assert!(dump.contains("--- gateway ---"), "{dump}");
    assert!(dump.contains("p99"), "{dump}");

    // Nothing malformed reached the admission queue.
    let (gateway_stats, server_stats) = gateway.shutdown();
    assert_eq!(server_stats.submitted, 0);
    assert!(gateway_stats.requests_with_status(400) >= 2);
    assert_eq!(gateway_stats.requests_with_status(404), 1);
    assert_eq!(gateway_stats.requests_with_status(405), 1);
    assert_eq!(gateway_stats.requests_with_status(413), 1);
}

/// Gateway errors unify into `snappix::Error` for callers mixing layers.
#[test]
fn gateway_errors_unify_into_the_umbrella_error() {
    let e: snappix::Error = GatewayError::Config {
        context: "zero read timeout".into(),
    }
    .into();
    assert!(matches!(e, snappix::Error::Gateway(_)));
    assert!(e.to_string().contains("zero read timeout"));

    // And builder validation actually produces them.
    let server = Server::builder(Pipeline::builder(model()))
        .with_workers(1)
        .build()
        .expect("server assembly");
    let err = Gateway::builder(server)
        .with_read_timeout(Duration::ZERO)
        .bind()
        .expect_err("zero timeout must be rejected");
    assert!(matches!(err, GatewayError::Config { .. }));
    assert!(RateLimit::new(0.0, 1).is_err());
}
