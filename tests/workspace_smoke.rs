//! Workspace smoke test: the umbrella crate's prelude re-exports resolve
//! and the quickstart pipeline (mask learning -> ViT training -> batched
//! deployment through the simulated sensor) runs end-to-end at the
//! smallest sensible scale — one 8x8 tile per frame — in seconds, not
//! minutes.

use snappix::prelude::*;

const T: usize = 4;
const HW: usize = 8;

/// Every name the quickstart path needs must be importable from
/// `snappix::prelude` alone (never constructed; it exists so the compiler
/// checks the re-export surface).
#[allow(dead_code)]
type PreludeSurface = (
    Pipeline,
    Pipeline<HardwareSensor>,
    PipelineBuilder,
    Inference,
    Prediction,
    Error,
    AlgorithmicEncoder,
    DeploymentReport,
    EdgeNode,
    ExposureMask,
    DecorrelationTrainer,
    EnergyModel,
    SnapPixAr,
    CeSensor,
    Readout,
    Tensor,
    Dataset,
    Video,
);

#[test]
fn quickstart_path_runs_on_a_tiny_clip() {
    let start = std::time::Instant::now();

    let data = Dataset::new(ucf101_like(T, HW, HW), 24);
    let (train, test) = data.split(0.75);

    let mut trainer = DecorrelationTrainer::new(DecorrelationConfig {
        slots: T,
        tile: (8, 8),
        batch_size: 4,
        ..DecorrelationConfig::default()
    })
    .expect("valid config");
    let learned = trainer.train(&train, 8).expect("mask training");
    assert!(learned.mask.open_fraction() > 0.0, "mask must not collapse");

    let mut model = SnapPixAr::new(
        VitConfig::snappix_s(HW, HW, data.num_classes()),
        learned.mask.clone(),
    )
    .expect("tile matches patch");
    train_action_model(&mut model, &train, &TrainOptions::experiment(2)).expect("training");

    let mut pipeline = Pipeline::builder(model)
        .with_hardware_sensor(ReadoutConfig::default())
        .expect("sensor assembly")
        .build()
        .expect("mask agreement");
    let batch = test.batch(0, test.len().min(4));
    let out = pipeline.infer(&batch.videos).expect("batched inference");
    assert_eq!(out.len(), batch.labels.len());
    for &label in &out.labels {
        assert!(label < data.num_classes(), "class index in range");
    }

    // "A few seconds" in practice (~2 s debug on one core); the bound is
    // 60x that so contended CI runners don't flake, while still catching an
    // accidental return to full-experiment scale (minutes).
    assert!(
        start.elapsed() < std::time::Duration::from_secs(120),
        "tiny quickstart took {:?}",
        start.elapsed()
    );
}

#[test]
fn prelude_energy_types_compose() {
    let model = EnergyModel::paper();
    let scenario = Scenario {
        frame_pixels: HW * HW,
        slots: T,
        wireless: Wireless::PassiveWifi,
    };
    let saving = model.edge_energy_saving(&scenario);
    assert!(saving > 1.0, "CE must save edge energy, got {saving}");
}
