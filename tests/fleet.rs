//! Integration suite for the `snappix-fleet` subsystem.
//!
//! The headline guarantee is the determinism contract: a seeded fleet
//! run with replayable node configs (blocking overload, no deadline)
//! produces bit-for-bit identical per-node stats, merged trace, and
//! aggregate — across repeated runs, driver-pool sizes, and server
//! worker counts, at every `SNAPPIX_THREADS` setting (CI runs this file
//! in both matrix legs). On top of that: conserved window and energy
//! ledgers fleet-wide, the duty-cycle ladder engaging and recovering
//! under budget pressure, and config validation at `add_node`.

use snappix_fleet::prelude::*;
use std::time::Duration;

const T: usize = 4;
const HW: usize = 16;
const CLASSES: usize = 5;
const FRAMES: usize = 41;

fn model() -> SnapPixAr {
    let mask = patterns::long_exposure(T, (8, 8)).expect("valid mask");
    SnapPixAr::new(VitConfig::snappix_s(HW, HW, CLASSES), mask).expect("valid model")
}

fn server(workers: usize) -> Server {
    Server::builder(Pipeline::builder(model()))
        .with_workers(workers)
        .with_batch_policy(BatchPolicy::new(4, Duration::from_millis(1)))
        .build()
        .expect("server starts")
}

/// Deterministic per-node videos: node `i` replays sample `i` of a
/// seeded dataset, so every run sees the same frames.
fn fleet_videos(n: usize) -> Vec<Video> {
    let data = Dataset::new(ssv2_like(FRAMES, HW, HW), n.max(1));
    (0..n).map(|i| data.sample(i).video).collect()
}

/// The cost one full inference charges a test node (paper pricing over
/// passive WiFi) — for sizing budgets to "exactly k windows".
fn infer_cost() -> f64 {
    EnergyModel::paper()
        .snappix_energy(&Scenario {
            frame_pixels: HW * HW,
            slots: T,
            wireless: Wireless::PassiveWifi,
        })
        .total_pj()
}

/// A mixed fleet: unbounded, finite-with-harvest, and finite-no-harvest
/// budgets at two frame rates.
fn mixed_config(i: usize, cost: f64) -> NodeConfig {
    let budget = match i % 3 {
        0 => EnergyBudget::unbounded(),
        1 => EnergyBudget::new(cost * 6.0).with_harvest(cost * 2.0),
        _ => EnergyBudget::new(cost * 3.0),
    };
    NodeConfig::new(T, 2)
        .with_fps(if i.is_multiple_of(2) { 30.0 } else { 15.0 })
        .with_budget(budget)
        .with_smoothing(Smoothing::Majority { k: 3 })
        .with_hysteresis(2)
        .with_sleep_cost(cost * 0.01)
}

fn run_mixed_fleet(drivers: usize, workers: usize, n: usize) -> FleetReport {
    let cost = infer_cost();
    let server = server(workers);
    let mut sim = FleetSim::new(&server).with_drivers(drivers);
    for (i, video) in fleet_videos(n).into_iter().enumerate() {
        sim.add_node(ReplaySource::new(video), mixed_config(i, cost))
            .expect("valid node");
    }
    let report = sim.run().expect("fleet run completes");
    server.shutdown();
    report
}

#[test]
fn replay_is_bit_for_bit_across_drivers_and_workers() {
    let baseline = run_mixed_fleet(1, 1, 6);
    assert!(baseline.stats.windows > 0, "fleet did work");
    assert!(baseline.stats.inferred > 0, "fleet inferred windows");
    assert!(!baseline.trace.is_empty(), "trace recorded");
    for (drivers, workers) in [(1, 1), (3, 2), (6, 2)] {
        let replay = run_mixed_fleet(drivers, workers, 6);
        assert_eq!(
            replay.nodes, baseline.nodes,
            "per-node stats and events must replay exactly \
             ({drivers} drivers, {workers} workers)"
        );
        assert_eq!(
            replay.trace, baseline.trace,
            "the merged trace must replay exactly ({drivers} drivers, {workers} workers)"
        );
        assert_eq!(
            replay.stats, baseline.stats,
            "aggregate must replay exactly"
        );
    }
}

/// The fleet records its events through the workspace's shared span
/// recorder: a caller-supplied tracer clone sees every event the report
/// carries — same order, node ids on lanes, virtual time on the clock —
/// and exports them as Chrome trace JSON alongside any serving spans.
#[test]
fn fleet_events_land_in_a_shared_tracer() {
    let baseline = run_mixed_fleet(2, 1, 4);

    let cost = infer_cost();
    let server = server(1);
    let tracer = Tracer::new();
    let mut sim = FleetSim::new(&server)
        .with_drivers(2)
        .with_tracer(tracer.clone());
    for (i, video) in fleet_videos(4).into_iter().enumerate() {
        sim.add_node(ReplaySource::new(video), mixed_config(i, cost))
            .expect("valid node");
    }
    let report = sim.run().expect("fleet run completes");
    server.shutdown();
    assert_eq!(
        report.trace, baseline.trace,
        "shared tracer changes nothing"
    );

    let snapshot = tracer.snapshot();
    assert_eq!(snapshot.dropped, 0, "nothing rotated out");
    let fleet_records: Vec<_> = snapshot
        .records
        .iter()
        .filter(|r| matches!(r.name, "inferred" | "shed" | "slept" | "expired" | "rung"))
        .collect();
    assert_eq!(
        fleet_records.len(),
        report.trace.len(),
        "every report event is a record in the shared tracer"
    );
    for (record, event) in fleet_records.iter().zip(&report.trace) {
        assert_eq!(record.start_us, event.at_us, "virtual time on the clock");
        assert_eq!(record.end_us, event.at_us, "events are instants");
        assert_eq!(record.lane as usize, event.node, "node ids ride on lanes");
        assert_eq!(record.trace_id, 0, "fleet events are background spans");
    }
    // And the whole run exports straight to Chrome trace JSON.
    let json = snapshot.to_chrome_json();
    assert!(json.contains("\"traceEvents\":["));
    assert!(json.contains("\"inferred\""));
}

#[test]
fn ledgers_are_conserved_fleet_wide() {
    let report = run_mixed_fleet(2, 2, 6);
    assert!(report.check_conserved(), "per-node and aggregate ledgers");
    let mut windows = 0;
    let mut spent = 0.0;
    for node in &report.nodes {
        let s = &node.stats;
        assert_eq!(
            s.inferred + s.shed + s.expired + s.slept,
            s.windows,
            "node {}: every window lands in exactly one bucket",
            node.id
        );
        assert_eq!(s.events, node.events.len() as u64);
        windows += s.windows;
        spent += s.spent_pj;
    }
    assert_eq!(report.stats.windows, windows);
    assert!((report.stats.spent_pj - spent).abs() <= 1e-9 * spent.max(1.0));
    assert_eq!(report.stats.nodes, 6);
    assert!(report.stats.energy_per_inference_pj() > 0.0);

    // Exporting the run reproduces the ledger as snappix_fleet_*
    // families: the per-node `node`-labeled counters sum back to the
    // aggregate, so the scraped view conserves exactly like the report.
    let registry = Registry::new();
    report.export_metrics(&registry);
    let page = registry.render();
    let sum = |name: &str| -> u64 {
        page.lines()
            .filter(|l| l.starts_with(&format!("{name}{{")))
            .map(|l| {
                l.rsplit(' ')
                    .next()
                    .expect("split never empty")
                    .parse::<u64>()
                    .expect("counter value")
            })
            .sum()
    };
    assert_eq!(sum("snappix_fleet_windows_total"), report.stats.windows);
    assert_eq!(
        sum("snappix_fleet_inferred_total")
            + sum("snappix_fleet_shed_total")
            + sum("snappix_fleet_expired_total")
            + sum("snappix_fleet_slept_total"),
        report.stats.windows,
        "the exported window ledger is conserved"
    );
    assert_eq!(sum("snappix_fleet_events_total"), report.stats.events);
    assert!(page.contains("snappix_fleet_nodes 6\n"), "{page}");
}

#[test]
fn unbounded_nodes_infer_every_window_and_match_offline_labels() {
    let server = server(2);
    let video = fleet_videos(1).remove(0);
    let hop = 2;
    let mut sim = FleetSim::new(&server);
    sim.add_node(
        ReplaySource::new(video.clone()),
        NodeConfig::new(T, hop)
            .with_smoothing(Smoothing::Off)
            .with_hysteresis(1),
    )
    .expect("valid node");
    let report = sim.run().expect("run completes");
    server.shutdown();

    let stats = &report.nodes[0].stats;
    let expected_windows = ((FRAMES - T) / hop + 1) as u64;
    assert_eq!(stats.windows, expected_windows);
    assert_eq!(stats.inferred, expected_windows, "no budget, no shedding");
    assert_eq!((stats.shed, stats.expired, stats.slept), (0, 0, 0));
    assert_eq!(stats.final_rung, DutyRung::Full);
    assert_eq!(stats.rung_changes, 0);
    assert!(stats.first_sleep_us.is_none());

    // The event-driven path must still be numerically the offline
    // pipeline: trace labels equal a serial inference over the same
    // sliding windows.
    let mut pipeline = Pipeline::builder(model()).build().expect("pipeline");
    let offline: Vec<usize> = video
        .windows(T, hop)
        .map(|w| pipeline.infer_clip(&w).expect("offline inference").label)
        .collect();
    let streamed: Vec<usize> = report
        .trace
        .iter()
        .filter_map(|e| match e.kind {
            TraceKind::Inferred { label } => Some(label),
            _ => None,
        })
        .collect();
    assert_eq!(streamed, offline, "fleet labels == offline labels");
}

#[test]
fn a_draining_budget_walks_the_ladder_and_harvest_recovers_it() {
    let cost = infer_cost();
    let server = server(1);
    let mut sim = FleetSim::new(&server);
    // Node 0: enough for a few windows, no harvest — must walk down to
    // Sleep and stay there. Node 1: same reserve, but harvest covers
    // ~3/4 of an inference per window — it drains at Full, then the
    // reduced rate lets harvest win and step it back up.
    sim.add_node(
        ReplaySource::new(fleet_videos(1).remove(0)),
        NodeConfig::new(T, 1)
            .with_budget(EnergyBudget::new(cost * 4.0))
            .with_fps(60.0),
    )
    .expect("valid node");
    sim.add_node(
        ReplaySource::new(fleet_videos(1).remove(0)),
        NodeConfig::new(T, 1)
            .with_budget(EnergyBudget::new(cost * 4.0).with_harvest(cost * 45.0))
            .with_fps(60.0),
    )
    .expect("valid node");
    let report = sim.run().expect("run completes");
    server.shutdown();

    let drained = &report.nodes[0].stats;
    assert!(drained.rung_changes > 0, "ladder engaged");
    assert_eq!(drained.final_rung, DutyRung::Sleep, "no harvest, no mercy");
    assert!(drained.first_sleep_us.is_some());
    assert!(drained.slept > 0);
    assert!(drained.inferred >= 1, "the budget bought a few inferences");
    assert!(drained.check_conserved());

    let harvesting = &report.nodes[1].stats;
    let recovered = report.trace.iter().any(|e| {
        e.node == 1 && matches!(e.kind, TraceKind::Rung { from, to } if to.depth() < from.depth())
    });
    assert!(recovered, "harvest must step the node back up the ladder");
    assert!(
        harvesting.inferred > drained.inferred,
        "harvest buys more inferences than a dead battery"
    );
    assert!(harvesting.harvested_pj > 0.0);
    assert!(harvesting.check_conserved());
}

#[test]
fn survival_curve_is_monotone_and_bounded() {
    let report = run_mixed_fleet(2, 1, 6);
    let curve = report.survival_curve(8);
    assert_eq!(curve.len(), 9);
    assert_eq!(curve[0].1, 1.0, "everyone starts awake");
    for pair in curve.windows(2) {
        assert!(pair[0].0 <= pair[1].0, "time advances");
        assert!(
            pair[0].1 >= pair[1].1,
            "first-sleep survival never recovers"
        );
        assert!((0.0..=1.0).contains(&pair[1].1));
    }
    // The no-harvest nodes (2 of 6) ran out: the curve must end below 1.
    assert!(curve[8].1 < 1.0, "some nodes slept: {curve:?}");
    assert!(report.survival_curve(0).is_empty());
}

#[test]
fn misconfigured_nodes_are_rejected_up_front() {
    let server = server(1);
    let mut sim = FleetSim::new(&server);
    let video = fleet_videos(1).remove(0);
    let bad: Vec<NodeConfig> = vec![
        NodeConfig::new(T + 1, 1), // window != model slots
        NodeConfig::new(T, 1).with_fps(f64::NAN),
        NodeConfig::new(T, 1).with_fps(0.0),
        NodeConfig::new(T, 1).with_fps(-30.0),
        NodeConfig::new(T, 1).with_fps(f64::INFINITY),
        NodeConfig::new(T, 1).with_overload(OverloadPolicy::DropOldest { pending: 4 }),
        NodeConfig::new(T, 1).with_ladder(DutyCycle {
            rate_divisor: 1,
            ..DutyCycle::default()
        }),
        NodeConfig::new(T, 1).with_sleep_cost(-1.0),
        NodeConfig::new(T, 1).with_sleep_cost(f64::NAN),
    ];
    for config in bad {
        let err = sim
            .add_node(ReplaySource::new(video.clone()), config.clone())
            .expect_err("must be rejected");
        assert!(
            matches!(err, FleetError::Config { .. }),
            "{config:?} -> {err}"
        );
        let umbrella: snappix::Error = err.into();
        assert!(umbrella.to_string().contains("fleet"));
    }
    assert_eq!(sim.node_count(), 0, "nothing slipped through");
    // A valid node still goes in afterwards.
    sim.add_node(ReplaySource::new(video), NodeConfig::new(T, 1))
        .expect("valid node accepted");
    assert_eq!(sim.node_count(), 1);
    drop(sim);
    server.shutdown();
}

#[test]
fn an_empty_fleet_returns_an_empty_report() {
    let server = server(1);
    let report = FleetSim::new(&server)
        .with_drivers(4)
        .run()
        .expect("empty run completes");
    server.shutdown();
    assert_eq!(report.stats.nodes, 0);
    assert_eq!(report.stats.windows, 0);
    assert!(report.trace.is_empty());
    assert!(report.check_conserved());
    assert!(report.survival_curve(4).is_empty());
}
