//! Integration tests of the training pipelines: MAE pre-training,
//! encoder transfer, fine-tuning, reconstruction, and the cross-model
//! training harness.

use snappix::prelude::*;

const T: usize = 8;
const HW: usize = 16;
const CLASSES: usize = 8;

fn mask() -> ExposureMask {
    patterns::sparse_random(T, (8, 8), &mut rand_seeded(2)).expect("valid dims")
}

fn rand_seeded(seed: u64) -> rand::rngs::StdRng {
    use rand::SeedableRng;
    rand::rngs::StdRng::seed_from_u64(seed)
}

#[test]
fn mae_pretraining_then_transfer_then_finetune() {
    // ssv2_like carries 10 classes; size the heads accordingly.
    const SSV2_CLASSES: usize = 10;
    let data = Dataset::new(ssv2_like(T, HW, HW), 48);
    let (train, test) = data.split(0.75);

    // Pre-train the encoder on coded-image-to-video reconstruction.
    let cfg = MaeConfig::for_encoder(VitConfig::snappix_s(HW, HW, SSV2_CLASSES), T);
    let mut mae = MaePretrainer::new(cfg, mask(), 3e-3).expect("geometry");
    let history = mae.train(&train, 25, 4).expect("pre-training");
    let early: f32 = history[..5].iter().sum::<f32>() / 5.0;
    let late: f32 = history[history.len() - 5..].iter().sum::<f32>() / 5.0;
    assert!(late < early, "MAE loss should fall: {early} -> {late}");

    // Transfer into a fresh AR model and fine-tune briefly.
    let mut model =
        SnapPixAr::new(VitConfig::snappix_s(HW, HW, SSV2_CLASSES), mask()).expect("geometry");
    let copied = mae.transfer_encoder(model.store_mut());
    assert!(
        copied >= 10,
        "encoder transfer copied only {copied} tensors"
    );
    let report =
        train_action_model(&mut model, &train, &TrainOptions::experiment(4)).expect("fine-tune");
    assert!(report.final_loss().is_finite());
    let acc = evaluate_accuracy(&model, &test).expect("evaluation");
    assert!((0.0..=100.0).contains(&acc));
}

#[test]
fn reconstruction_training_beats_temporal_mean_baseline() {
    let data = Dataset::new(ssv2_like(T, HW, HW), 32);
    let mut rec = SnapPixRec::new(
        VitConfig::snappix_s(HW, HW, CLASSES),
        patterns::short_exposure(T, (8, 8), 4).expect("valid dims"),
        T,
        3e-3,
    )
    .expect("geometry");
    rec.train(&data, 250, 4).expect("training");
    let psnr_model = rec.evaluate_psnr(&data, 8).expect("evaluation");

    // Baseline: predict every frame as the clip's temporal mean.
    let batch = data.batch(0, 8);
    let mut mean_psnr = 0.0f32;
    for b in 0..8 {
        let clip = Video::new(batch.videos.index_axis(0, b).expect("batch")).expect("rank");
        let mean = clip.temporal_mean();
        let mut frames = Vec::new();
        for _ in 0..T {
            frames.push(mean.clone());
        }
        let refs: Vec<&Tensor> = frames.iter().collect();
        let constant = Tensor::stack(&refs, 0).expect("stack");
        mean_psnr += psnr(clip.frames(), &constant).expect("psnr");
    }
    mean_psnr /= 8.0;
    assert!(
        psnr_model > mean_psnr - 3.0,
        "trained REC ({psnr_model:.2} dB) should be competitive with the \
         temporal-mean baseline ({mean_psnr:.2} dB)"
    );
}

#[test]
fn every_baseline_trains_without_error() {
    let data = Dataset::new(ucf101_like(T, HW, HW), 16);
    let opts = TrainOptions::quick();

    let mut svc = Svc2d::new(T, HW, HW, 8, CLASSES).expect("geometry");
    let r = train_action_model(&mut svc, &data, &opts).expect("svc2d");
    assert!(r.final_loss().is_finite());

    let mut c3d = C3d::new(T, HW, HW, CLASSES).expect("geometry");
    let r = train_action_model(&mut c3d, &data, &opts).expect("c3d");
    assert!(r.final_loss().is_finite());

    let mut vvit = VideoVit::new(T, HW, HW, CLASSES).expect("geometry");
    let r = train_action_model(&mut vvit, &data, &opts).expect("video-vit");
    assert!(r.final_loss().is_finite());

    let mut down = DownsampleVideoVit::new(T, HW, HW, 4, CLASSES).expect("geometry");
    let r = train_action_model(&mut down, &data, &opts).expect("downsample");
    assert!(r.final_loss().is_finite());
}

#[test]
fn svc2d_learns_its_pattern_during_training() {
    let data = Dataset::new(ucf101_like(T, HW, HW), 16);
    let mut svc = Svc2d::new(T, HW, HW, 8, CLASSES).expect("geometry");
    let before = svc.learned_mask().expect("mask");
    train_action_model(&mut svc, &data, &TrainOptions::quick()).expect("training");
    let after = svc.learned_mask().expect("mask");
    // End-to-end learning must actually move the pattern.
    assert_ne!(
        before.pattern().as_slice(),
        after.pattern().as_slice(),
        "SVC2D's exposure pattern should change during training"
    );
}

#[test]
fn accuracy_evaluation_is_deterministic() {
    let data = Dataset::new(ucf101_like(T, HW, HW), 16);
    let model = SnapPixAr::new(VitConfig::snappix_s(HW, HW, CLASSES), mask()).expect("geometry");
    let a = evaluate_accuracy(&model, &data).expect("eval");
    let b = evaluate_accuracy(&model, &data).expect("eval");
    assert_eq!(a, b, "multi-threaded evaluation must stay deterministic");
}
