//! Integration tests of the redesigned umbrella API: the `Sense`
//! backend abstraction and the batched `Pipeline` inference engine.
//!
//! Property tests (vendored proptest): the algorithmic encoder and the
//! noiseless hardware sensor agree *through the trait*, and batched
//! inference is bit-for-bit identical to per-clip inference.

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use snappix::prelude::*;

const HW: usize = 16;
const TILE: (usize, usize) = (8, 8);
const CLASSES: usize = 5;

/// Generic over the backend — this is the point of the `Sense` trait:
/// the same driver code serves the training and deployment paths.
fn coded_via<S: Sense>(backend: &mut S, clip: &Tensor) -> Tensor
where
    S::Error: std::fmt::Debug,
{
    backend.sense(clip).expect("sense")
}

fn model_for(mask: &ExposureMask) -> SnapPixAr {
    SnapPixAr::new(VitConfig::snappix_s(HW, HW, CLASSES), mask.clone()).expect("geometry")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For any random mask and clip, the training-time encoder and the
    /// ideal-readout hardware simulation produce the same coded image
    /// when driven through the shared `Sense` trait.
    #[test]
    fn algorithmic_and_ideal_hardware_backends_agree(
        seed in 0u64..10_000,
        t in 2usize..8,
        open in 0.2f32..0.8,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mask = patterns::random(t, TILE, open, &mut rng).expect("valid dims");
        let clip = Tensor::rand_uniform(&mut rng, &[t, HW, HW], 0.0, 1.0);
        let mut sw = AlgorithmicEncoder::new(mask.clone());
        let mut hw = HardwareSensor::new(HW, HW, mask).expect("geometry");
        let a = coded_via(&mut sw, &clip);
        let b = coded_via(&mut hw, &clip);
        prop_assert!(a.approx_eq(&b, 1e-5), "seed {seed}: backends disagree");
    }

    /// Unnormalized variants agree too (the ablation path).
    #[test]
    fn unnormalized_backends_agree(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mask = patterns::random(4, TILE, 0.5, &mut rng).expect("valid dims");
        let clip = Tensor::rand_uniform(&mut rng, &[4, HW, HW], 0.0, 1.0);
        let mut sw = AlgorithmicEncoder::new(mask.clone()).with_normalization(false);
        let mut hw = HardwareSensor::new(HW, HW, mask)
            .expect("geometry")
            .with_normalization(false);
        prop_assert!(coded_via(&mut sw, &clip).approx_eq(&coded_via(&mut hw, &clip), 1e-5));
    }

    /// `Pipeline::infer` on a batch is bit-for-bit identical to the same
    /// clips inferred one at a time — batching is a pure throughput
    /// optimization, never a numerics change.
    #[test]
    fn batched_infer_is_bitwise_equal_to_per_clip(seed in 0u64..10_000, batch in 2usize..6) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mask = patterns::random(4, TILE, 0.5, &mut rng).expect("valid dims");
        let mut pipeline = Pipeline::builder(model_for(&mask)).build().expect("assembly");
        let clips = Tensor::rand_uniform(&mut rng, &[batch, 4, HW, HW], 0.0, 1.0);
        let batched = pipeline.infer(&clips).expect("batched inference");
        prop_assert_eq!(batched.logits.shape(), &[batch, CLASSES]);
        prop_assert_eq!(batched.predictions().len(), batch);
        for (b, row) in batched.predictions().enumerate() {
            let clip = clips.index_axis(0, b).expect("clip");
            let single = pipeline.infer_clip(&clip).expect("single inference");
            prop_assert_eq!(single.label, row.label);
            prop_assert!(
                single.logits.approx_eq(&row.logits, 0.0),
                "clip {}: batched logits must equal single-clip logits exactly", b
            );
        }
    }

    /// The submit/flush micro-batching queue preserves order and values.
    #[test]
    fn microbatch_queue_matches_direct_batch(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mask = patterns::random(4, TILE, 0.5, &mut rng).expect("valid dims");
        let mut pipeline = Pipeline::builder(model_for(&mask))
            .with_max_pending(3)
            .build()
            .expect("assembly");
        let clips = Tensor::rand_uniform(&mut rng, &[5, 4, HW, HW], 0.0, 1.0);
        let direct = pipeline.infer(&clips).expect("batched inference");

        let mut queued = Vec::new();
        for b in 0..5 {
            let clip = clips.index_axis(0, b).expect("clip");
            if let Some(done) = pipeline.submit(&clip).expect("submit") {
                queued.extend(done.labels);
            }
        }
        queued.extend(pipeline.flush().expect("flush").labels);
        prop_assert_eq!(queued, direct.labels);
        prop_assert_eq!(pipeline.pending(), 0);
    }
}

/// Regression test for the old `SnapPixSystem::logits`, which rebuilt
/// the autograd graph and session on every call: the engine's session
/// reuse must not change results — repeated `infer` calls on the same
/// pipeline give identical logits, on both backends.
#[test]
fn repeated_infer_calls_give_identical_logits() {
    let mut rng = StdRng::seed_from_u64(77);
    let mask = patterns::random(4, TILE, 0.5, &mut rng).expect("valid dims");
    let clips = Tensor::rand_uniform(&mut rng, &[3, 4, HW, HW], 0.0, 1.0);

    let mut algorithmic = Pipeline::builder(model_for(&mask))
        .build()
        .expect("assembly");
    let mut hardware = Pipeline::builder(model_for(&mask))
        .with_hardware_sensor(ReadoutConfig::noiseless(12, 4.0))
        .expect("sensor assembly")
        .build()
        .expect("assembly");

    let first_sw = algorithmic.infer(&clips).expect("inference");
    let first_hw = hardware.infer(&clips).expect("inference");
    for round in 0..4 {
        let sw = algorithmic.infer(&clips).expect("inference");
        let hw = hardware.infer(&clips).expect("inference");
        assert!(
            sw.logits.approx_eq(&first_sw.logits, 0.0),
            "round {round}: algorithmic logits drifted across session reuse"
        );
        assert!(
            hw.logits.approx_eq(&first_hw.logits, 0.0),
            "round {round}: hardware logits drifted across session reuse"
        );
        assert_eq!(sw.labels, first_sw.labels);
        assert_eq!(hw.labels, first_hw.labels);
    }
}

/// The unified error type converts from every layer and surfaces
/// backend failures with context.
#[test]
fn unified_error_spans_the_stack() {
    let mask = patterns::long_exposure(4, TILE).expect("valid dims");
    let mut pipeline = Pipeline::builder(model_for(&mask))
        .build()
        .expect("assembly");

    // Wrong rank -> tensor-level error through the Ce backend.
    let err = pipeline.infer(&Tensor::zeros(&[4, HW, HW])).unwrap_err();
    assert!(matches!(err, Error::Ce(_)), "got {err}");
    // Wrong slot count -> mask validation error.
    let err = pipeline
        .infer_clip(&Tensor::zeros(&[3, HW, HW]))
        .unwrap_err();
    assert!(!err.to_string().is_empty());
    assert!(std::error::Error::source(&err).is_some());

    // Hardware backend failures arrive as Error::Sensor.
    let mut hw = Pipeline::builder(model_for(&mask))
        .with_hardware_sensor(ReadoutConfig::default())
        .expect("sensor assembly")
        .build()
        .expect("assembly");
    let err = hw.infer_clip(&Tensor::zeros(&[4, 8, 8])).unwrap_err();
    assert!(matches!(err, Error::Sensor(_)), "got {err}");
}

/// Regression: an empty `[0, t, h, w]` batch is defined as "nothing to
/// do" — the serve-layer batcher can race to a flush with zero clips and
/// must get an empty `Inference`, not a shape error, on *both* backends.
#[test]
fn empty_batch_is_an_empty_inference_on_both_backends() {
    let mask = patterns::long_exposure(4, TILE).expect("valid dims");
    let mut sw = Pipeline::builder(model_for(&mask))
        .build()
        .expect("assembly");
    let mut hw = Pipeline::builder(model_for(&mask))
        .with_hardware_sensor(ReadoutConfig::default())
        .expect("sensor assembly")
        .build()
        .expect("assembly");
    fn assert_empty_inference<S: Sense>(pipeline: &mut Pipeline<S>)
    where
        Error: From<S::Error>,
    {
        let out = pipeline
            .infer(&Tensor::zeros(&[0, 4, HW, HW]))
            .expect("empty batch is well-defined");
        assert!(out.is_empty());
        assert_eq!(out.logits.shape(), &[0, CLASSES]);
        assert_eq!(out.predictions().count(), 0);
    }
    assert_empty_inference(&mut sw);
    assert_empty_inference(&mut hw);
}
