//! End-to-end parity suite for the shared data-parallel layer
//! (`snappix_tensor::parallel`): every parallelized kernel, driven
//! through the public API, must match its single-thread serial reference
//! **bit-for-bit** at thread counts 1, 2 and far more workers than there
//! are rows/bands/batches to split.
//!
//! Bit-for-bit (not approximate) equality holds by construction: every
//! kernel partitions its *output* across workers and preserves the
//! serial per-element accumulation order, so no float reassociation
//! occurs anywhere. Per-kernel unit parity tests live next to the
//! kernels (tensor `ops`, nn `conv`, ce `stats`, sensor `array`); this
//! suite checks the composition all the way through `Pipeline`.

use rand::{rngs::StdRng, SeedableRng};
use snappix::prelude::*;

const THREAD_COUNTS: [usize; 3] = [2, 6, 64];

fn model() -> SnapPixAr {
    let mut rng = StdRng::seed_from_u64(33);
    let mask = patterns::random(8, (8, 8), 0.5, &mut rng).expect("valid dims");
    SnapPixAr::new(VitConfig::snappix_s(32, 32, 7), mask).expect("geometry")
}

fn clips(batch: usize) -> Tensor {
    let mut rng = StdRng::seed_from_u64(34);
    Tensor::rand_uniform(&mut rng, &[batch, 8, 32, 32], 0.0, 1.0)
}

/// The full inference engine — algorithmic sensing plus the ViT forward
/// (matmul-heavy) — is thread-count invariant through the builder knob.
#[test]
fn pipeline_inference_is_thread_count_invariant() {
    let clips = clips(5);
    let reference = {
        let mut p = Pipeline::builder(model())
            .with_threads(1)
            .build()
            .expect("assembly");
        assert_eq!(p.threads(), Some(1));
        p.infer(&clips).expect("serial inference")
    };
    for threads in THREAD_COUNTS {
        let mut p = Pipeline::builder(model())
            .with_threads(threads)
            .build()
            .expect("assembly");
        let out = p.infer(&clips).expect("parallel inference");
        assert_eq!(out.labels, reference.labels, "{threads} threads");
        assert_eq!(
            out.logits.as_slice(),
            reference.logits.as_slice(),
            "logits must be bit-for-bit at {threads} threads"
        );
    }
}

/// The hardware-simulation path (banded capture + readout) is
/// thread-count invariant too, and the scoped ambient override
/// (`parallel::with_threads`) behaves like the builder knob.
#[test]
fn hardware_sensing_is_thread_count_invariant() {
    let clips = clips(2);
    let infer = |threads: usize| {
        parallel::with_threads(threads, || {
            let mut p = Pipeline::builder(model())
                .with_hardware_sensor(ReadoutConfig::noiseless(12, 8.0))
                .expect("sensor assembly")
                .build()
                .expect("assembly");
            assert_eq!(p.threads(), None, "ambient override, not the knob");
            p.infer(&clips).expect("inference")
        })
    };
    let reference = infer(1);
    for threads in THREAD_COUNTS {
        let out = infer(threads);
        assert_eq!(
            out.logits.as_slice(),
            reference.logits.as_slice(),
            "{threads} threads"
        );
    }
}

/// A full training step (conv/matmul forwards + backwards through
/// autograd) is thread-count invariant: same losses, bit-for-bit.
#[test]
fn training_step_is_thread_count_invariant() {
    use snappix_video::ucf101_like;
    let train = |threads: usize| {
        parallel::with_threads(threads, || {
            let mut model = C3d::new(8, 16, 16, 8).expect("model");
            let data = Dataset::new(ucf101_like(8, 16, 16), 8);
            let report = train_action_model(
                &mut model,
                &data,
                &TrainOptions {
                    epochs: 1,
                    batch_size: 4,
                    lr: 1e-3,
                    clip_norm: Some(5.0),
                    cosine_schedule: false,
                    seed: 9,
                },
            )
            .expect("training");
            report.losses
        })
    };
    let reference = train(1);
    for threads in [2usize, 16] {
        let losses = train(threads);
        assert_eq!(losses, reference, "{threads} threads");
    }
}

/// `evaluate_accuracy` (the former hardcoded `.min(4)` call site) is
/// sharding invariant.
#[test]
fn accuracy_evaluation_is_thread_count_invariant() {
    use snappix_video::ssv2_like;
    let model = model();
    let data = Dataset::new(ssv2_like(8, 32, 32), 11);
    let reference =
        parallel::with_threads(1, || evaluate_accuracy(&model, &data).expect("evaluation"));
    for threads in THREAD_COUNTS {
        let acc =
            parallel::with_threads(threads, || evaluate_accuracy(&model, &data).expect("eval"));
        assert_eq!(acc, reference, "{threads} threads");
    }
}
