//! Property-based equivalence between the hardware behavioral simulation
//! (Sec. V pixel/array/protocol) and the algorithmic Eqn. 1 codec.

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use snappix::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For any random mask and video, the charge-domain sensor computes
    /// exactly Eqn. 1 (the paper's central hardware-correctness claim).
    #[test]
    fn sensor_equals_codec(seed in 0u64..10_000, t in 2usize..10, open in 0.1f32..0.9) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mask = patterns::random(t, (4, 4), open, &mut rng).expect("valid dims");
        let video = Tensor::rand_uniform(&mut rng, &[t, 8, 8], 0.0, 1.0);
        let mut sensor = CeSensor::new(8, 8, mask.clone()).expect("geometry");
        let hw = sensor.capture(&video).expect("capture");
        let sw = encode(&video, &mask).expect("encode");
        prop_assert!(hw.approx_eq(&sw, 1e-5), "seed {seed}: hw != Eqn. 1");
    }

    /// Sparse-random masks (exactly one slot per pixel) also agree —
    /// this exercises the pattern-reset path that flushes stale charge.
    #[test]
    fn sensor_equals_codec_sparse(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mask = patterns::sparse_random(8, (2, 2), &mut rng).expect("valid dims");
        let video = Tensor::rand_uniform(&mut rng, &[8, 6, 6], 0.0, 1.0);
        let mut sensor = CeSensor::new(6, 6, mask.clone()).expect("geometry");
        let hw = sensor.capture(&video).expect("capture");
        let sw = encode(&video, &mask).expect("encode");
        prop_assert!(hw.approx_eq(&sw, 1e-5));
    }

    /// With a noiseless ADC, digitization error is bounded by half an LSB
    /// of the configured full scale.
    #[test]
    fn adc_error_is_bounded(seed in 0u64..10_000, bits in 6u32..13) {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = 4usize;
        let mask = patterns::random(t, (4, 4), 0.5, &mut rng).expect("valid dims");
        let video = Tensor::rand_uniform(&mut rng, &[t, 8, 8], 0.0, 1.0);
        let mut sensor = CeSensor::new(8, 8, mask.clone()).expect("geometry");
        let analog = sensor.capture(&video).expect("capture");
        let mut readout = Readout::new(ReadoutConfig::noiseless(bits, t as f32));
        let digital = readout.digitize(&analog);
        let lsb = t as f32 / ((1u64 << bits) - 1) as f32;
        for (&a, &d) in analog.as_slice().iter().zip(digital.as_slice()) {
            prop_assert!((a - d).abs() <= 0.5 * lsb + 1e-5,
                "analog {a} digital {d} lsb {lsb}");
        }
    }

    /// Captures are idempotent: running the same video twice through the
    /// same sensor yields the same image (no state leaks across frames).
    #[test]
    fn captures_are_repeatable(seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mask = patterns::random(4, (4, 4), 0.5, &mut rng).expect("valid dims");
        let video = Tensor::rand_uniform(&mut rng, &[4, 8, 8], 0.0, 1.0);
        let mut sensor = CeSensor::new(8, 8, mask).expect("geometry");
        let first = sensor.capture(&video).expect("capture");
        let second = sensor.capture(&video).expect("capture");
        prop_assert!(first.approx_eq(&second, 0.0));
    }
}

#[test]
fn pattern_clock_budget_matches_tile_size() {
    // The Sec. V design streams th*tw bits per slot, twice per slot; the
    // paper's 9 pJ/pixel CE overhead is priced at this activity.
    for (th, tw) in [(2usize, 2usize), (4, 4), (8, 8)] {
        let mask = patterns::long_exposure(4, (th, tw)).expect("valid dims");
        let mut sensor = CeSensor::new(th * 2, tw * 2, mask).expect("geometry");
        sensor
            .capture(&Tensor::zeros(&[4, th * 2, tw * 2]))
            .expect("capture");
        assert_eq!(
            sensor.stats().pattern_clock_cycles,
            (2 * 4 * th * tw) as u64,
            "tile {th}x{tw}"
        );
    }
}

#[test]
fn shot_noise_degrades_but_preserves_signal() {
    let mut rng = StdRng::seed_from_u64(5);
    let mask = patterns::long_exposure(8, (4, 4)).expect("valid dims");
    let video = Tensor::rand_uniform(&mut rng, &[8, 16, 16], 0.2, 0.8);
    let mut sensor = CeSensor::new(16, 16, mask.clone()).expect("geometry");
    let analog = sensor.capture(&video).expect("capture");
    let mut noisy = Readout::new(ReadoutConfig {
        adc_bits: 8,
        full_scale: 8.0,
        full_well_electrons: 5_000.0,
        read_noise_electrons: 3.0,
        shot_noise: true,
        seed: 9,
    });
    let digital = noisy.digitize(&analog);
    // Noisy but correlated: PSNR in a sane band (not destroyed, not
    // noiseless).
    let db = psnr(&analog.scale(1.0 / 8.0), &digital.scale(1.0 / 8.0)).expect("same shape");
    assert!(
        (15.0..60.0).contains(&db),
        "noisy readout PSNR {db} dB outside expected band"
    );
}
