//! Integration suite for the `snappix-stream` subsystem.
//!
//! The headline guarantee mirrors the serving layer's: streaming must be
//! *operationally* different from offline inference (windowing, pacing,
//! overload policies, events) while staying *numerically* identical to
//! it — every window's raw prediction bit-for-bit equal to an offline
//! `Pipeline::infer` loop over `Video::windows(t, hop)` of the same
//! frames, on both the algorithmic and the hardware backend, at every
//! `SNAPPIX_THREADS` setting (CI runs this file in both matrix legs).

use snappix_stream::prelude::*;
use std::time::Duration;

const T: usize = 4;
const HW: usize = 16;
const CLASSES: usize = 5;
const FRAMES: usize = 37; // deliberately not divisible by any hop below

fn model() -> SnapPixAr {
    let mask = patterns::long_exposure(T, (8, 8)).expect("valid mask");
    SnapPixAr::new(VitConfig::snappix_s(HW, HW, CLASSES), mask).expect("valid model")
}

/// Four distinct deterministic videos with four hop regimes: dense
/// overlap, tiling, gapped (hop > t), and generic overlap.
fn workload() -> Vec<(Video, usize)> {
    let data = Dataset::new(ssv2_like(FRAMES, HW, HW), 4);
    let hops = [1, T, 7, 3];
    (0..4).map(|i| (data.sample(i).video, hops[i])).collect()
}

/// Raw streaming config: no smoothing, immediate events — so the
/// session's outputs are pure functions of the raw label sequence and
/// can be checked exactly.
fn raw_config(hop: usize) -> SessionConfig {
    SessionConfig::new(T, hop)
        .with_smoothing(Smoothing::Off)
        .with_hysteresis(1)
}

/// Offline reference: per-window predictions from a serial pipeline over
/// the exact same sliding windows.
fn offline_reference<S>(
    mut pipeline: Pipeline<S>,
    workload: &[(Video, usize)],
) -> Vec<Vec<Prediction>>
where
    S: Sense,
    snappix::Error: From<S::Error>,
{
    workload
        .iter()
        .map(|(video, hop)| {
            video
                .windows(T, *hop)
                .map(|w| pipeline.infer_clip(&w).expect("offline inference"))
                .collect()
        })
        .collect()
}

fn assert_streams_match(report: &RunReport, reference: &[Vec<Prediction>]) {
    assert_eq!(report.streams.len(), reference.len());
    for (stream, expected) in report.streams.iter().zip(reference) {
        assert_eq!(
            stream.results.len(),
            expected.len(),
            "stream {}: every offline window must be streamed",
            stream.id
        );
        assert!(stream.dropped.is_empty(), "nothing drops under Block");
        for (k, (result, offline)) in stream.results.iter().zip(expected).enumerate() {
            assert_eq!(result.index, k, "results arrive in window order");
            assert_eq!(
                result.prediction.label, offline.label,
                "stream {} window {k}: label",
                stream.id
            );
            assert!(
                result.prediction.logits.approx_eq(&offline.logits, 0.0),
                "stream {} window {k}: streamed logits must be bit-for-bit offline",
                stream.id
            );
            assert_eq!(result.smoothed, offline.label, "Smoothing::Off is raw");
        }
    }
}

/// Replays the raw label sequence through the documented
/// hysteresis-1 event semantics: an event on the first window and on
/// every label change.
fn expected_raw_events(
    stream: usize,
    hop: usize,
    labels: &[usize],
) -> Vec<(usize, usize, Option<usize>, usize)> {
    let mut events = Vec::new();
    let mut active: Option<usize> = None;
    for (k, &label) in labels.iter().enumerate() {
        if active != Some(label) {
            events.push((stream, k, active, label));
            active = Some(label);
        }
    }
    events
        .into_iter()
        .map(|(s, k, from, to)| (s, k * hop + T - 1, from, to))
        .collect()
}

/// The headline guarantee, algorithmic backend: N concurrent streams
/// through a replicated, dynamically-batching server produce exactly the
/// offline per-window predictions, and the raw event stream is exactly
/// the label-change sequence of those predictions.
#[test]
fn streamed_windows_match_offline_inference_exactly() {
    let workload = workload();
    let reference = offline_reference(
        Pipeline::builder(model()).build().expect("assembly"),
        &workload,
    );

    let server = Server::builder(Pipeline::builder(model()))
        .with_workers(2)
        .with_queue_depth(32)
        .with_batch_policy(BatchPolicy::new(4, Duration::from_millis(2)))
        .build()
        .expect("server assembly");
    let mut runner = StreamRunner::new(&server);
    for (video, hop) in &workload {
        runner.add_stream(ReplaySource::new(video.clone()), raw_config(*hop));
    }
    assert_eq!(runner.streams(), 4);
    let report = runner.run().expect("streaming run");

    assert_streams_match(&report, &reference);

    // Events are the raw label-change sequence, stamped with the frame
    // that confirmed them.
    for ((stream, expected), (_, hop)) in report.streams.iter().zip(&reference).zip(&workload) {
        let labels: Vec<usize> = expected.iter().map(|p| p.label).collect();
        let want = expected_raw_events(stream.id, *hop, &labels);
        let got: Vec<(usize, usize, Option<usize>, usize)> = stream
            .events
            .iter()
            .map(|e| (e.stream, e.at_frame, e.from, e.to))
            .collect();
        assert_eq!(got, want, "stream {}", stream.id);
        assert_eq!(stream.stats.events, want.len() as u64);
    }

    // Accounting is conserved per stream and in aggregate.
    let agg = &report.aggregate;
    assert_eq!(agg.frames, (4 * FRAMES) as u64);
    let expected_windows: u64 = workload
        .iter()
        .map(|(_, hop)| ((FRAMES - T) / hop + 1) as u64)
        .sum();
    assert_eq!(agg.windows, expected_windows);
    assert_eq!(agg.inferred, expected_windows);
    assert_eq!(agg.shed + agg.expired, 0);
    assert_eq!(agg.latency.samples, expected_windows);
    assert_eq!(agg.service_ratio(), 1.0);
    assert!(report.windows_per_sec() > 0.0);

    // The same ledger, live on the server's shared metrics registry:
    // every session registered the snappix_stream_* families at
    // construction and recorded as frames flowed, so a render of the
    // registry agrees with the aggregated report exactly.
    let page = server.metrics().render();
    for (needle, value) in [
        ("snappix_stream_frames_total", agg.frames),
        ("snappix_stream_windows_total", agg.windows),
        ("snappix_stream_inferred_total", agg.inferred),
        ("snappix_stream_shed_total", agg.shed),
        ("snappix_stream_expired_total", agg.expired),
        ("snappix_stream_events_total", agg.events),
        ("snappix_stream_window_latency_seconds_count", agg.inferred),
    ] {
        assert!(
            page.contains(&format!("{needle} {value}\n")),
            "{needle} should read {value} on the rendered page:\n{page}"
        );
    }

    // The server really did serve all of it.
    let stats = server.shutdown();
    assert_eq!(stats.completed, expected_windows);
}

/// The same guarantee on the deployment path: windows pass through the
/// simulated charge-domain sensor and a noiseless readout, replicated
/// per worker — still bit-for-bit the offline hardware pipeline.
#[test]
fn hardware_backed_streaming_matches_offline_hardware_inference() {
    let workload = workload();
    let reference = offline_reference(
        Pipeline::builder(model())
            .with_hardware_sensor(ReadoutConfig::noiseless(12, 4.0))
            .expect("sensor assembly")
            .build()
            .expect("assembly"),
        &workload,
    );

    let recipe = Pipeline::builder(model())
        .with_hardware_sensor(ReadoutConfig::noiseless(12, 4.0))
        .expect("sensor assembly");
    let server = Server::builder(recipe)
        .with_workers(2)
        .build()
        .expect("server assembly");
    let mut runner = StreamRunner::new(&server);
    for (video, hop) in &workload {
        runner.add_stream(ReplaySource::new(video.clone()), raw_config(*hop));
    }
    let report = runner.run().expect("streaming run");
    assert_streams_match(&report, &reference);
}

/// Saturate a one-slot server (a parked worker holds its batch open, so
/// the single queue slot stays occupied) and require each overload
/// policy's behaviour to be exactly deterministic.
#[test]
fn overload_policies_are_deterministic_under_a_saturated_server() {
    let (video, hop) = (&workload()[0].0, 3);
    let windows = (FRAMES - T) / hop + 1; // 12

    let server = Server::builder(Pipeline::builder(model()))
        .with_workers(1)
        .with_queue_depth(1)
        // max_batch far above what we submit + a huge delay parks the
        // worker holding its batch open; the dummy below then occupies
        // the only queue slot for the whole test.
        .with_batch_policy(BatchPolicy::new(64, Duration::from_secs(30)))
        .build()
        .expect("server assembly");
    let dummy = server
        .submit(&Tensor::zeros(&[T, HW, HW]))
        .expect("the slot was free");

    // SkipWindow: every window is shed at admission, in order.
    let mut session = StreamSession::new(
        0,
        &server,
        raw_config(hop).with_overload(OverloadPolicy::SkipWindow),
    )
    .expect("session");
    for i in 0..FRAMES {
        session.push(&video.frame(i).expect("frame")).expect("push");
    }
    let report = session.finish().expect("finish");
    assert_eq!(report.stats.windows, windows as u64);
    assert_eq!(report.stats.inferred, 0);
    assert_eq!(report.stats.shed, windows as u64);
    assert_eq!(report.stats.expired, 0);
    assert!(report.results.is_empty());
    assert!(report.events.is_empty());
    assert_eq!(
        report.dropped,
        (0..windows)
            .map(|i| (i, DropReason::Shed))
            .collect::<Vec<_>>()
    );

    // DropOldest(pending = 2): the buffer holds the two freshest
    // windows; every older one is displaced in arrival order, and the
    // final two are shed at finish (the policy never blocks).
    let mut session = StreamSession::new(
        1,
        &server,
        raw_config(hop).with_overload(OverloadPolicy::DropOldest { pending: 2 }),
    )
    .expect("session");
    for i in 0..FRAMES {
        session.push(&video.frame(i).expect("frame")).expect("push");
    }
    let report = session.finish().expect("finish");
    assert_eq!(report.stats.shed, windows as u64);
    assert_eq!(report.stats.inferred, 0);
    assert_eq!(
        report.dropped,
        (0..windows)
            .map(|i| (i, DropReason::Shed))
            .collect::<Vec<_>>(),
        "oldest-first displacement, then the final buffered pair"
    );

    // Unpark: shutdown flushes the parked batch and answers the dummy.
    drop(server);
    assert!(dummy.wait().is_ok(), "the parked request is still served");
}

/// Per-window deadlines expire queued windows server-side and are
/// accounted as `expired`, not `shed` — deterministically so for a
/// zero deadline, which is already stale when a worker claims it.
#[test]
fn zero_deadline_expires_every_window() {
    let (video, hop) = (&workload()[1].0, T);
    let windows = (FRAMES - T) / hop + 1;

    let server = Server::builder(Pipeline::builder(model()))
        .with_workers(1)
        .build()
        .expect("server assembly");
    let mut session = StreamSession::new(0, &server, raw_config(hop).with_deadline(Duration::ZERO))
        .expect("session");
    for i in 0..FRAMES {
        session.push(&video.frame(i).expect("frame")).expect("push");
    }
    let report = session.finish().expect("finish");
    assert_eq!(report.stats.windows, windows as u64);
    assert_eq!(report.stats.expired, windows as u64);
    assert_eq!(report.stats.inferred + report.stats.shed, 0);
    let stats = server.shutdown();
    assert_eq!(stats.expired, windows as u64);
    assert_eq!(stats.completed, 0);
}

/// Misconfiguration is rejected at session construction, and the
/// runner propagates it.
#[test]
fn mismatched_window_length_is_rejected_up_front() {
    let server = Server::builder(Pipeline::builder(model()))
        .with_workers(1)
        .build()
        .expect("server assembly");
    let err = StreamSession::new(0, &server, SessionConfig::new(T + 1, 1));
    assert!(matches!(err, Err(StreamError::Config { .. })));

    let mut runner = StreamRunner::new(&server);
    let video = workload()[0].0.clone();
    runner.add_stream(ReplaySource::new(video), SessionConfig::new(T + 1, 1));
    let err = runner.run();
    assert!(matches!(err, Err(StreamError::Config { .. })));

    // And the unified error face works one layer up.
    let unified: snappix::Error = err.expect_err("config error").into();
    assert!(matches!(unified, snappix::Error::Stream(_)));
}

/// Non-finite and non-positive frame rates are config errors, not
/// silently-clamped intervals.
#[test]
fn bad_frame_rates_are_rejected_up_front() {
    for bad in [0.0, -1.0, -30.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        let err = Pacing::fps(bad).expect_err("bad fps must be rejected");
        assert!(
            matches!(err, StreamError::Config { .. }),
            "fps {bad}: {err}"
        );
        assert!(
            err.to_string().contains("fps"),
            "error should name the knob: {err}"
        );
    }
    // The boundary of validity: tiny-but-positive and huge-but-finite
    // rates are legal.
    assert!(Pacing::fps(0.001).is_ok());
    assert!(Pacing::fps(1e6).is_ok());
}

/// Real-time pacing feeds frames on schedule: a short 2-stream run at a
/// brisk rate still infers every window (this is a smoke test of the
/// pacing path, not a latency assertion — CI machines are noisy).
#[test]
fn real_time_pacing_serves_every_window_when_unloaded() {
    let data = Dataset::new(ssv2_like(12, HW, HW), 2);
    let server = Server::builder(Pipeline::builder(model()))
        .with_workers(1)
        .build()
        .expect("server assembly");
    let mut runner = StreamRunner::new(&server).with_pacing(Pacing::fps(500.0).expect("valid fps"));
    for i in 0..2 {
        runner.add_stream(
            ReplaySource::new(data.sample(i).video),
            SessionConfig::new(T, 2),
        );
    }
    let report = runner.run().expect("run");
    assert_eq!(report.aggregate.frames, 24);
    assert_eq!(report.aggregate.windows, report.aggregate.inferred);
    assert!(report.wall >= Duration::from_millis(20), "pacing slept");
}

/// Compile-time pin: the whole streaming object graph crosses threads.
#[test]
fn streaming_types_are_send() {
    fn assert_send<T: Send>() {}
    assert_send::<StreamSession<'static>>();
    assert_send::<StreamRunner<'static>>();
    assert_send::<ReplaySource>();
    assert_send::<SyntheticSource>();
    assert_send::<StreamError>();
    assert_send::<RunReport>();
}
