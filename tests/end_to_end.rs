//! Workspace integration test: the full SnapPix pipeline from mask
//! learning through batched deployment on the simulated sensor hardware.

use snappix::prelude::*;
use std::sync::{Mutex, MutexGuard, OnceLock};

const T: usize = 8;
const HW: usize = 24;
const CLASSES: usize = 8;

type DeployedPipeline = Pipeline<HardwareSensor>;

static SHARED: OnceLock<(Mutex<DeployedPipeline>, Dataset)> = OnceLock::new();

/// Trains the full pipeline once and shares it across the tests in this
/// file (training is the expensive part; the tests probe different
/// properties of the same deployed engine).
fn trained_pipeline() -> (MutexGuard<'static, DeployedPipeline>, &'static Dataset) {
    let (pipeline, test) = SHARED.get_or_init(|| {
        let data = Dataset::new(ucf101_like(T, HW, HW), 120);
        let (train, test) = data.split(0.8);

        // Stage 1: task-agnostic mask learning by decorrelation.
        let mut trainer = DecorrelationTrainer::new(DecorrelationConfig {
            slots: T,
            tile: (8, 8),
            batch_size: 6,
            ..DecorrelationConfig::default()
        })
        .expect("valid config");
        // 60 steps is enough (at the default learning rate) for the mask to
        // move decisively towards the sparse decorrelated regime the paper
        // reports; 20 leaves it in a half-converged state that is *worse*
        // than its random initialization for the downstream task.
        let learned = trainer.train(&train, 60).expect("mask training");
        assert!(learned.mask.open_fraction() > 0.0, "mask must not collapse");

        // Stage 2: task training on coded images.
        let mut model = SnapPixAr::new(VitConfig::snappix_s(HW, HW, CLASSES), learned.mask.clone())
            .expect("tile matches patch");
        train_action_model(&mut model, &train, &TrainOptions::experiment(12)).expect("training");

        // Stage 3: deployment with a noiseless readout (so hardware and
        // algorithmic paths can be compared exactly).
        let pipeline = Pipeline::builder(model)
            .with_hardware_sensor(ReadoutConfig::noiseless(12, T as f32))
            .expect("sensor assembly")
            .build()
            .expect("mask agreement");
        (Mutex::new(pipeline), test)
    });
    (pipeline.lock().expect("no poisoned lock"), test)
}

#[test]
fn full_pipeline_classifies_above_chance_in_batches() {
    let (mut pipeline, test) = trained_pipeline();
    let pipeline = &mut *pipeline;
    // The whole test set goes through in batched forward passes.
    let mut correct = 0usize;
    let batch_size = 8;
    let mut i = 0;
    while i < test.len() {
        let n = batch_size.min(test.len() - i);
        let batch = test.batch(i, n);
        let out = pipeline.infer(&batch.videos).expect("batched inference");
        assert_eq!(out.len(), n);
        correct += out
            .labels
            .iter()
            .zip(&batch.labels)
            .filter(|(a, b)| a == b)
            .count();
        i += n;
    }
    let acc = 100.0 * correct as f32 / test.len() as f32;
    let chance = 100.0 / CLASSES as f32;
    assert!(
        acc > chance + 5.0,
        "hardware-path accuracy {acc:.1}% should beat chance {chance:.1}%"
    );
}

#[test]
fn hardware_and_algorithmic_paths_agree() {
    let (mut pipeline, test) = trained_pipeline();
    let pipeline = &mut *pipeline;
    let sample = test.sample(0);
    let video = sample.video.frames();

    // Hardware path: charge-domain sensor sim + 12-bit noiseless ADC.
    let hw = pipeline.infer_clip(video).expect("hardware path");

    // Algorithmic path: Eqn. 1 encoder through the same Sense trait.
    let mut encoder = AlgorithmicEncoder::new(pipeline.model().mask().clone());
    let coded = encoder.sense(video).expect("encode");
    let batch = coded.reshape(&[1, HW, HW]).expect("singleton batch");
    let mut sess = snappix_nn::Session::inference(pipeline.model().store());
    let sw_var = pipeline
        .model()
        .build_logits_from_coded(&mut sess, &batch)
        .expect("model forward");
    let sw_logits = sess
        .graph
        .value(sw_var)
        .clone()
        .reshape(&[CLASSES])
        .expect("row");

    // The only difference is ADC quantization; logits must be close and
    // the argmax identical.
    assert_eq!(
        snappix_tensor::argmax_coords(&hw.logits),
        snappix_tensor::argmax_coords(&sw_logits),
        "hardware and algorithmic paths must agree on the class"
    );
    assert!(
        hw.logits.approx_eq(&sw_logits, 0.35),
        "logit gap exceeds quantization tolerance:\nhw {}\nsw {sw_logits}",
        hw.logits
    );
}

#[test]
fn batched_inference_matches_per_clip_calls_bit_for_bit() {
    let (mut pipeline, test) = trained_pipeline();
    let pipeline = &mut *pipeline;
    let batch = test.batch(0, 4);
    let batched = pipeline.infer(&batch.videos).expect("batched inference");
    assert_eq!(batched.predictions().len(), 4);
    for (b, row) in batched.predictions().enumerate() {
        let clip = batch.videos.index_axis(0, b).expect("clip");
        let single = pipeline.infer_clip(&clip).expect("single inference");
        assert_eq!(single.label, row.label, "clip {b}");
        assert!(
            single.logits.approx_eq(&row.logits, 0.0),
            "clip {b}: batched and single logits must be identical"
        );
    }
}

#[test]
fn capture_stats_match_protocol_accounting() {
    let (mut pipeline, test) = trained_pipeline();
    let pipeline = &mut *pipeline;
    let sample = test.sample(0);
    pipeline.classify(sample.video.frames()).expect("classify");
    let stats = pipeline.backend().stats();
    // Two pattern streams per slot, 64 pattern-clock cycles per stream
    // (8x8 tile).
    assert_eq!(stats.pattern_clock_cycles, (2 * T * 64) as u64);
    assert_eq!(stats.exposure_slots, T as u64);
    assert_eq!(stats.pixels_read, (HW * HW) as u64);
}

#[test]
fn edge_node_energy_is_consistent_with_pipeline_compression() {
    let (pipeline, _) = trained_pipeline();
    let pipeline = &*pipeline;
    let t = pipeline.model().mask().num_slots();
    let node = EdgeNode::new(HW * HW, t, Wireless::PassiveWifi);
    // The readout+wireless reduction must equal the compression ratio.
    let conv = node.conventional_energy();
    let snap = node.snappix_energy();
    let reduction = (conv.readout_pj + conv.wireless_pj) / (snap.readout_pj + snap.wireless_pj);
    assert!((reduction - t as f64).abs() < 1e-9);
    assert!(node.snappix_saving() > 1.0);
}
