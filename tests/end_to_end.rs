//! Workspace integration test: the full SnapPix pipeline from mask
//! learning through deployment on the simulated sensor hardware.

use snappix::prelude::*;
use std::sync::{Mutex, MutexGuard, OnceLock};

const T: usize = 8;
const HW: usize = 24;
const CLASSES: usize = 8;

static SHARED: OnceLock<(Mutex<SnapPixSystem>, Dataset)> = OnceLock::new();

/// Trains the full pipeline once and shares it across the tests in this
/// file (training is the expensive part; the tests probe different
/// properties of the same deployed system).
fn trained_system() -> (MutexGuard<'static, SnapPixSystem>, &'static Dataset) {
    let (system, test) = SHARED.get_or_init(|| {
        let data = Dataset::new(ucf101_like(T, HW, HW), 120);
        let (train, test) = data.split(0.8);

        // Stage 1: task-agnostic mask learning by decorrelation.
        let mut trainer = DecorrelationTrainer::new(DecorrelationConfig {
            slots: T,
            tile: (8, 8),
            batch_size: 6,
            ..DecorrelationConfig::default()
        })
        .expect("valid config");
        // 60 steps is enough (at the default learning rate) for the mask to
        // move decisively towards the sparse decorrelated regime the paper
        // reports; 20 leaves it in a half-converged state that is *worse*
        // than its random initialization for the downstream task.
        let learned = trainer.train(&train, 60).expect("mask training");
        assert!(learned.mask.open_fraction() > 0.0, "mask must not collapse");

        // Stage 2: task training on coded images.
        let mut model = SnapPixAr::new(VitConfig::snappix_s(HW, HW, CLASSES), learned.mask.clone())
            .expect("tile matches patch");
        train_action_model(&mut model, &train, &TrainOptions::experiment(12)).expect("training");

        // Stage 3: deployment with a noiseless readout (so hardware and
        // algorithmic paths can be compared exactly).
        let system = SnapPixSystem::new(model, ReadoutConfig::noiseless(12, T as f32))
            .expect("system assembly");
        (Mutex::new(system), test)
    });
    (system.lock().expect("no poisoned lock"), test)
}

#[test]
fn full_pipeline_classifies_above_chance() {
    let (mut system, test) = trained_system();
    let system = &mut *system;
    let mut correct = 0usize;
    for i in 0..test.len() {
        let sample = test.sample(i);
        let predicted = system.classify(sample.video.frames()).expect("classify");
        if predicted == sample.label {
            correct += 1;
        }
    }
    let acc = 100.0 * correct as f32 / test.len() as f32;
    let chance = 100.0 / CLASSES as f32;
    assert!(
        acc > chance + 5.0,
        "hardware-path accuracy {acc:.1}% should beat chance {chance:.1}%"
    );
}

#[test]
fn hardware_and_algorithmic_paths_agree() {
    let (mut system, test) = trained_system();
    let system = &mut *system;
    let sample = test.sample(0);
    let video = sample.video.frames();

    // Hardware path: charge-domain sensor sim + 12-bit noiseless ADC.
    let hw_logits = system.logits(video).expect("hardware path");

    // Algorithmic path: Eqn. 1 encoder.
    let batch = video.reshape(&[1, T, HW, HW]).expect("singleton batch");
    let coded = system.model().compress(&batch).expect("compress");
    let mut sess = snappix_nn::Session::inference(system.model().store());
    let sw_var = system
        .model()
        .build_logits_from_coded(&mut sess, &coded)
        .expect("model forward");
    let sw_logits = sess.graph.value(sw_var).clone();

    // The only difference is ADC quantization; logits must be close and
    // the argmax identical.
    assert_eq!(
        snappix_tensor::argmax_coords(&hw_logits),
        snappix_tensor::argmax_coords(&sw_logits),
        "hardware and algorithmic paths must agree on the class"
    );
    assert!(
        hw_logits.approx_eq(&sw_logits, 0.35),
        "logit gap exceeds quantization tolerance:\nhw {hw_logits}\nsw {sw_logits}"
    );
}

#[test]
fn capture_stats_match_protocol_accounting() {
    let (mut system, test) = trained_system();
    let system = &mut *system;
    let sample = test.sample(0);
    system.classify(sample.video.frames()).expect("classify");
    let stats = system.last_capture_stats();
    // Two pattern streams per slot, 64 pattern-clock cycles per stream
    // (8x8 tile).
    assert_eq!(stats.pattern_clock_cycles, (2 * T * 64) as u64);
    assert_eq!(stats.exposure_slots, T as u64);
    assert_eq!(stats.pixels_read, (HW * HW) as u64);
}

#[test]
fn edge_node_energy_is_consistent_with_system_compression() {
    let (system, _) = trained_system();
    let system = &*system;
    let t = system.model().mask().num_slots();
    let node = EdgeNode::new(HW * HW, t, Wireless::PassiveWifi);
    // The readout+wireless reduction must equal the compression ratio.
    let conv = node.conventional_energy();
    let snap = node.snappix_energy();
    let reduction = (conv.readout_pj + conv.wireless_pj) / (snap.readout_pj + snap.wireless_pj);
    assert!((reduction - t as f64).abs() < 1e-9);
    assert!(node.snappix_saving() > 1.0);
}
