//! Integration suite for the `snappix-serve` subsystem: a batched,
//! replicated server must be *operationally* different from a serial
//! pipeline (batching, shedding, deadlines) while staying *numerically*
//! identical to it.

use rand::{rngs::StdRng, SeedableRng};
use snappix_serve::prelude::*;
use std::time::Duration;

const T: usize = 4;
const HW: usize = 16;
const CLASSES: usize = 5;

fn model() -> SnapPixAr {
    let mask = patterns::long_exposure(T, (8, 8)).expect("valid mask");
    SnapPixAr::new(VitConfig::snappix_s(HW, HW, CLASSES), mask).expect("valid model")
}

fn clips(n: usize) -> Vec<Tensor> {
    let mut rng = StdRng::seed_from_u64(0xbeef);
    (0..n)
        .map(|_| Tensor::rand_uniform(&mut rng, &[T, HW, HW], 0.0, 1.0))
        .collect()
}

/// Compile-time pin: the serving layer's whole object graph crosses
/// threads, so `Pipeline` (both backends), `Server`, and `Ticket` must
/// stay `Send`. A regression here (an `Rc`, a non-`Send` closure in the
/// autograd graph, ...) fails compilation, not a test at runtime.
#[test]
fn serving_types_are_send() {
    fn assert_send<T: Send>() {}
    assert_send::<Pipeline<AlgorithmicEncoder>>();
    assert_send::<Pipeline<HardwareSensor>>();
    assert_send::<PipelineBuilder<AlgorithmicEncoder>>();
    assert_send::<Server>();
    assert_send::<Ticket>();
    assert_send::<ServeError>();
    fn assert_sync<T: Sync>() {}
    assert_sync::<Server>(); // clients share &Server across threads
}

/// The headline guarantee: hammer one server from many client threads
/// and require every answer to be bit-for-bit identical to a serial
/// per-clip loop over a single pipeline.
#[test]
fn concurrent_batched_serving_matches_serial_inference_exactly() {
    const CLIENTS: usize = 8;
    const PER_CLIENT: usize = 4;
    let all = clips(CLIENTS * PER_CLIENT);

    // Serial reference: one pipeline, one clip at a time.
    let mut serial = Pipeline::builder(model()).build().expect("assembly");
    let reference: Vec<Prediction> = all
        .iter()
        .map(|c| serial.infer_clip(c).expect("serial inference"))
        .collect();

    let server = Server::builder(Pipeline::builder(model()))
        .with_workers(2)
        .with_queue_depth(CLIENTS * PER_CLIENT)
        .with_batch_policy(BatchPolicy::new(4, Duration::from_millis(2)))
        .build()
        .expect("server assembly");

    let served: Vec<Vec<Prediction>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|client| {
                let all = &all;
                let server = &server;
                scope.spawn(move || {
                    // Interleave clients across the clip list so batches
                    // mix requests from different clients.
                    (0..PER_CLIENT)
                        .map(|i| {
                            let ticket = server
                                .submit(&all[i * CLIENTS + client])
                                .expect("admission");
                            ticket.wait().expect("prediction")
                        })
                        .collect()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });

    for (client, results) in served.iter().enumerate() {
        for (i, prediction) in results.iter().enumerate() {
            let expected = &reference[i * CLIENTS + client];
            assert_eq!(prediction.label, expected.label, "client {client} clip {i}");
            assert!(
                prediction.logits.approx_eq(&expected.logits, 0.0),
                "client {client} clip {i}: batched logits must be bit-for-bit serial"
            );
        }
    }

    let stats = server.shutdown();
    assert_eq!(stats.submitted, (CLIENTS * PER_CLIENT) as u64);
    assert_eq!(stats.completed, (CLIENTS * PER_CLIENT) as u64);
    assert_eq!(stats.rejected + stats.expired + stats.failed, 0);
    assert!(stats.batches >= 1);
    let clips_through_batches: u64 = stats
        .batch_sizes
        .iter()
        .enumerate()
        .map(|(size, &count)| size as u64 * count)
        .sum();
    assert_eq!(clips_through_batches, stats.completed);
    assert!(stats.queue_latency.samples >= stats.completed);
    assert!(stats.compute_latency.samples >= stats.batches);
    assert!(stats.throughput() > 0.0);
}

/// Backpressure is explicit: with a one-slot queue and a worker holding
/// its batch open, the second submission must shed with `Overloaded`.
#[test]
fn tiny_queue_sheds_load_with_overloaded() {
    let server = Server::builder(Pipeline::builder(model()))
        .with_workers(1)
        .with_queue_depth(1)
        // A large max_batch with a long delay parks the worker in its
        // "wait for more clips" phase, so the queued request stays in
        // the queue and deterministically occupies the only slot.
        .with_batch_policy(BatchPolicy::new(8, Duration::from_secs(30)))
        .build()
        .expect("server assembly");

    let clip = &clips(1)[0];
    let first = server.submit(clip).expect("one slot free");
    let shed = server.try_submit(clip);
    assert!(
        matches!(shed, Err(ServeError::Overloaded { capacity: 1 })),
        "second submission must be shed, got {shed:?}"
    );
    let stats = server.stats();
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.submitted, 1);

    // Shutdown flushes the parked partial batch immediately — the
    // admitted request is still answered, not abandoned.
    drop(server);
    let p = first.wait().expect("drained on shutdown");
    assert_eq!(p.logits.shape(), &[CLASSES]);
}

/// Deadlines expire queued work instead of running it late.
#[test]
fn expired_deadlines_shed_queued_work() {
    let server = Server::builder(Pipeline::builder(model()))
        .with_workers(1)
        .with_queue_depth(8)
        .with_batch_policy(BatchPolicy::new(2, Duration::from_millis(100)))
        .build()
        .expect("server assembly");

    let clip = &clips(1)[0];
    // A zero deadline is expired by the time any worker claims it.
    let doomed = server
        .try_submit_within(clip, Duration::ZERO)
        .expect("admission is still granted");
    match doomed.wait() {
        Err(ServeError::DeadlineExpired { .. }) => {}
        other => panic!("expected DeadlineExpired, got {other:?}"),
    }
    // A generous deadline serves normally on the same server.
    let fine = server
        .submit_within(clip, Duration::from_secs(60))
        .expect("admission");
    assert_eq!(fine.wait().expect("served").logits.shape(), &[CLASSES]);

    let stats = server.shutdown();
    assert_eq!(stats.expired, 1);
    assert_eq!(stats.completed, 1);
}

/// A client-side `wait_timeout` that expires while the request is
/// *mid-compute* (claimed off the queue, riding in a running batch) must
/// return `Ok(None)` and leave the ticket redeemable — a client timing
/// out is not a server-side deadline expiry. Only queue-side expiry was
/// covered before this test.
#[test]
fn wait_timeout_mid_compute_leaves_the_ticket_redeemable() {
    // A deliberately heavy batch so its compute dwarfs the poll timeout:
    // 32 clips of [8, 32, 32] through SnapPix-S is multiple milliseconds
    // of forward pass on any CPU, and the timeout below is 250 us.
    const B: usize = 32;
    let mask = patterns::long_exposure(8, (8, 8)).expect("valid mask");
    let model = SnapPixAr::new(VitConfig::snappix_s(32, 32, CLASSES), mask).expect("valid model");
    let server = Server::builder(Pipeline::builder(model))
        .with_workers(1)
        .with_queue_depth(B)
        // The worker holds its batch open until all B requests are
        // queued, then claims them together — so compute starts, and
        // only starts, right after the last submission below.
        .with_batch_policy(BatchPolicy::new(B, Duration::from_secs(30)))
        .build()
        .expect("server assembly");

    let mut rng = StdRng::seed_from_u64(0xfeed);
    let tickets: Vec<Ticket> = (0..B)
        .map(|_| {
            let clip = Tensor::rand_uniform(&mut rng, &[8, 32, 32], 0.0, 1.0);
            server.submit(&clip).expect("admission")
        })
        .collect();

    // The full batch was just claimed; its forward pass is now running.
    // A 250 us poll cannot outlive a 32-clip forward pass, so this
    // expires with the request mid-compute (or still being claimed —
    // either way, unanswered).
    let last = tickets.last().expect("B tickets");
    assert_eq!(
        last.wait_timeout(Duration::from_micros(250)),
        Ok(None),
        "client-side timeout, request still in flight"
    );

    // The ticket remains redeemable: a later bounded wait gets the
    // answer, and so do all the other tickets.
    let answered = last
        .wait_timeout(Duration::from_secs(60))
        .expect("served")
        .expect("answer arrived within the bounded wait");
    assert_eq!(answered.logits.shape(), &[CLASSES]);
    for ticket in &tickets[..B - 1] {
        assert!(ticket.wait_timeout(Duration::from_secs(60)).is_ok());
    }

    // Nothing expired server-side: the client giving up on a poll must
    // not shed the work.
    let stats = server.shutdown();
    assert_eq!(stats.completed, B as u64);
    assert_eq!(stats.expired, 0);
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.batches, 1, "all B rode one batch");
    assert_eq!(stats.batch_sizes[B], 1);
}

/// Geometry is validated at admission so one bad clip cannot poison a
/// whole batch, and shutdown refuses new work.
#[test]
fn bad_clips_and_shutdown_are_rejected_at_the_door() {
    let server = Server::builder(Pipeline::builder(model()))
        .with_workers(1)
        .build()
        .expect("server assembly");
    assert_eq!(server.expected_clip(), [T, HW, HW]);
    assert_eq!(server.num_classes(), CLASSES);
    assert!(matches!(
        server.try_submit(&Tensor::zeros(&[T, 8, 8])),
        Err(ServeError::BadClip { .. })
    ));
    assert!(matches!(
        server.try_submit(&Tensor::zeros(&[1, T, HW, HW])),
        Err(ServeError::BadClip { .. })
    ));
    // Bad clips never reach the queue or the stats.
    assert_eq!(server.stats().submitted, 0);

    // The blocking API answers like the one-shot API.
    let clip = &clips(1)[0];
    let label = server.classify(clip).expect("classify");
    let direct = server.infer_clip(clip).expect("infer_clip");
    assert_eq!(label, direct.label);
}

/// The hardware-sensor path serves through replicas too (each replica
/// clones the readout chain), and agrees with the algorithmic path on
/// the decision for a noiseless ADC.
#[test]
fn hardware_backed_server_serves_and_agrees_on_labels() {
    let recipe = Pipeline::builder(model())
        .with_hardware_sensor(ReadoutConfig::noiseless(12, 4.0))
        .expect("sensor assembly");
    let server = Server::builder(recipe)
        .with_workers(2)
        .build()
        .expect("server assembly");
    let mut sw = Pipeline::builder(model()).build().expect("assembly");
    for clip in &clips(3) {
        let hw_label = server.classify(clip).expect("served");
        let sw_label = sw.infer_clip(clip).expect("serial").label;
        assert_eq!(hw_label, sw_label, "noiseless ADC must not flip labels");
    }
}

/// Serve errors unify into `snappix::Error` for callers mixing layers.
#[test]
fn serve_errors_unify_into_the_umbrella_error() {
    let e: snappix::Error = ServeError::Overloaded { capacity: 64 }.into();
    assert!(matches!(e, snappix::Error::Serve(_)));
    assert!(e.to_string().contains("overloaded"));
}
