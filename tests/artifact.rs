//! Workspace-level integration suite for the `.spx` weight artifact.
//!
//! The guarantee under test: loading weights through the zero-copy
//! artifact path must be *operationally* different from `load_params`
//! (one shared read-only payload buffer instead of per-replica copies)
//! while staying *numerically* invisible — bit-for-bit identical logits
//! on both backends, at every thread count, whether inference runs
//! through a bare `Pipeline`, the batched server, or a frame stream.

use snappix_stream::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

const T: usize = 4;
const HW: usize = 16;
const CLASSES: usize = 5;

fn model() -> SnapPixAr {
    let mask = patterns::long_exposure(T, (8, 8)).expect("valid mask");
    SnapPixAr::new(VitConfig::snappix_s(HW, HW, CLASSES), mask).expect("valid model")
}

fn clips(n: usize) -> Vec<Tensor> {
    use rand::{rngs::StdRng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(0xbeef);
    (0..n)
        .map(|_| Tensor::rand_uniform(&mut rng, &[T, HW, HW], 0.0, 1.0))
        .collect()
}

/// The same clips as one `[n, t, h, w]` batch for `Pipeline::infer`.
fn clip_batch(n: usize) -> Tensor {
    use rand::{rngs::StdRng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(0xbeef);
    Tensor::rand_uniform(&mut rng, &[n, T, HW, HW], 0.0, 1.0)
}

/// Writes one model's weights both ways — legacy `.snpx` stream and
/// `.spx` artifact — so every test compares the two load paths over
/// identical values. Fresh models are seeded, so one instance's weights
/// stand in for a trained checkpoint.
fn checkpoint_pair(tag: &str) -> (PathBuf, PathBuf) {
    let mut base = std::env::temp_dir();
    base.push(format!("snappix_it_artifact_{}_{tag}", std::process::id()));
    let snpx = base.with_extension("snpx");
    let spx = base.with_extension("spx");
    let trained = model();
    save_params(trained.store(), &snpx).expect("legacy save");
    write_artifact(trained.store(), &spx).expect("artifact save");
    (snpx, spx)
}

fn legacy_loaded_model(snpx: &PathBuf) -> SnapPixAr {
    let mut m = model();
    load_params(m.store_mut(), snpx).expect("legacy load");
    m
}

/// Both backends, thread counts 1 and 2: an artifact-loaded pipeline is
/// bit-for-bit the `load_params`-loaded one.
#[test]
fn artifact_and_load_params_pipelines_agree_bit_for_bit() {
    let (snpx, spx) = checkpoint_pair("pipelines");
    let clips = clip_batch(4);
    for threads in [1, 2] {
        // Algorithmic encoder.
        let mut legacy = Pipeline::builder(legacy_loaded_model(&snpx))
            .with_threads(threads)
            .build()
            .expect("assembly");
        let mut artifact = Pipeline::builder(model())
            .with_artifact(&spx)
            .expect("artifact open")
            .with_threads(threads)
            .build()
            .expect("assembly");
        let a = legacy.infer(&clips).expect("legacy inference");
        let b = artifact.infer(&clips).expect("artifact inference");
        assert_eq!(a.labels, b.labels, "threads {threads}");
        assert!(
            a.logits.approx_eq(&b.logits, 0.0),
            "threads {threads}: artifact logits must be bit-for-bit load_params logits"
        );

        // Hardware sensor (noiseless, so deterministic).
        let mut legacy_hw = Pipeline::builder(legacy_loaded_model(&snpx))
            .with_hardware_sensor(ReadoutConfig::noiseless(12, 4.0))
            .expect("sensor assembly")
            .with_threads(threads)
            .build()
            .expect("assembly");
        let mut artifact_hw = Pipeline::builder(model())
            .with_hardware_sensor(ReadoutConfig::noiseless(12, 4.0))
            .expect("sensor assembly")
            .with_artifact(&spx)
            .expect("artifact open")
            .with_threads(threads)
            .build()
            .expect("assembly");
        let a = legacy_hw.infer(&clips).expect("legacy hw inference");
        let b = artifact_hw.infer(&clips).expect("artifact hw inference");
        assert_eq!(a.labels, b.labels, "hw threads {threads}");
        assert!(
            a.logits.approx_eq(&b.logits, 0.0),
            "hw threads {threads}: artifact logits must be bit-for-bit load_params logits"
        );
    }
    std::fs::remove_file(snpx).ok();
    std::fs::remove_file(spx).ok();
}

/// An artifact-fed server answers concurrent batched clients bit-for-bit
/// like a serial `load_params` pipeline.
#[test]
fn served_answers_from_an_artifact_match_the_serial_baseline() {
    const CLIENTS: usize = 4;
    const PER_CLIENT: usize = 3;
    let (snpx, spx) = checkpoint_pair("serve");
    let all = clips(CLIENTS * PER_CLIENT);

    let mut serial = Pipeline::builder(legacy_loaded_model(&snpx))
        .build()
        .expect("assembly");
    let reference: Vec<Prediction> = all
        .iter()
        .map(|c| serial.infer_clip(c).expect("serial inference"))
        .collect();

    let server = Server::builder(Pipeline::builder(model()))
        .with_artifact(&spx)
        .expect("artifact open")
        .with_workers(2)
        .with_queue_depth(CLIENTS * PER_CLIENT)
        .with_batch_policy(BatchPolicy::new(4, Duration::from_millis(2)))
        .build()
        .expect("server assembly");

    let served: Vec<Vec<Prediction>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|client| {
                let all = &all;
                let server = &server;
                scope.spawn(move || {
                    (0..PER_CLIENT)
                        .map(|i| {
                            let ticket = server
                                .submit(&all[i * CLIENTS + client])
                                .expect("admission");
                            ticket.wait().expect("prediction")
                        })
                        .collect()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });

    for (client, results) in served.iter().enumerate() {
        for (i, prediction) in results.iter().enumerate() {
            let expected = &reference[i * CLIENTS + client];
            assert_eq!(prediction.label, expected.label, "client {client} clip {i}");
            assert!(
                prediction.logits.approx_eq(&expected.logits, 0.0),
                "client {client} clip {i}: served artifact logits must be bit-for-bit serial"
            );
        }
    }
    std::fs::remove_file(snpx).ok();
    std::fs::remove_file(spx).ok();
}

/// Streaming over an artifact-fed server reproduces the offline
/// `load_params` reference per window.
#[test]
fn streamed_windows_over_an_artifact_server_match_offline() {
    const FRAMES: usize = 21;
    let (snpx, spx) = checkpoint_pair("stream");
    let video = Dataset::new(ssv2_like(FRAMES, HW, HW), 1).sample(0).video;
    let hop = 3;

    let mut offline = Pipeline::builder(legacy_loaded_model(&snpx))
        .build()
        .expect("assembly");
    let reference: Vec<Prediction> = video
        .windows(T, hop)
        .map(|w| offline.infer_clip(&w).expect("offline inference"))
        .collect();

    let server = Server::builder(Pipeline::builder(model()))
        .with_artifact(&spx)
        .expect("artifact open")
        .with_workers(2)
        .with_batch_policy(BatchPolicy::new(4, Duration::from_millis(2)))
        .build()
        .expect("server assembly");
    let mut runner = StreamRunner::new(&server);
    runner.add_stream(
        ReplaySource::new(video),
        SessionConfig::new(T, hop)
            .with_smoothing(Smoothing::Off)
            .with_hysteresis(1),
    );
    let report = runner.run().expect("streaming run");

    let stream = &report.streams[0];
    assert_eq!(stream.results.len(), reference.len());
    for (k, (result, offline)) in stream.results.iter().zip(&reference).enumerate() {
        assert_eq!(result.prediction.label, offline.label, "window {k}");
        assert!(
            result.prediction.logits.approx_eq(&offline.logits, 0.0),
            "window {k}: streamed artifact logits must be bit-for-bit offline"
        );
    }
    std::fs::remove_file(snpx).ok();
    std::fs::remove_file(spx).ok();
}

/// Replicas stamped from an artifact recipe all view the *same* payload
/// buffer — one `Arc` allocation for the whole fleet, verified by
/// pointer identity and by the deduplicating byte accounting.
#[test]
fn artifact_replicas_share_one_payload_buffer() {
    let (snpx, spx) = checkpoint_pair("replicas");
    let replicas = Pipeline::builder(model())
        .with_artifact(&spx)
        .expect("artifact open")
        .build_replicas(4)
        .expect("replica assembly");

    // Every parameter of every replica windows one payload allocation.
    let first_store = replicas[0].model().store();
    let payload = first_store
        .value(first_store.ids()[0])
        .shared_buffer()
        .expect("artifact tensors are shared");
    for (r, replica) in replicas.iter().enumerate() {
        let store = replica.model().store();
        for id in store.ids() {
            let buf = store
                .value(id)
                .shared_buffer()
                .unwrap_or_else(|| panic!("replica {r}: param not shared"));
            assert!(
                Arc::ptr_eq(payload, buf),
                "replica {r}: every param must view the single artifact payload"
            );
        }
    }

    // Resident bytes: four replicas cost one payload, not four.
    let solo = Pipeline::builder(model())
        .with_artifact(&spx)
        .expect("artifact open")
        .build()
        .expect("assembly");
    assert_eq!(resident_weight_bytes(&replicas), solo.weight_bytes());
    std::fs::remove_file(snpx).ok();
    std::fs::remove_file(spx).ok();
}

/// The serve-layer gauge: resident weight bytes stay exactly flat as the
/// worker count scales 1 → 4 → 8 over one artifact.
#[test]
fn resident_weight_bytes_stay_flat_as_workers_scale() {
    let (snpx, spx) = checkpoint_pair("workers");
    let solo_bytes = Pipeline::builder(model())
        .with_artifact(&spx)
        .expect("artifact open")
        .build()
        .expect("assembly")
        .weight_bytes() as u64;
    assert!(solo_bytes > 0);

    for workers in [1, 4, 8] {
        let server = Server::builder(Pipeline::builder(model()))
            .with_artifact(&spx)
            .expect("artifact open")
            .with_workers(workers)
            .build()
            .expect("server assembly");
        let stats = server.stats();
        assert_eq!(
            stats.resident_weight_bytes, solo_bytes,
            "{workers} workers must keep exactly one resident weight copy"
        );
        drop(server);
    }
    std::fs::remove_file(snpx).ok();
    std::fs::remove_file(spx).ok();
}
